#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/scaler.h"
#include "data/splits.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

data::Dataset MakeDataset(const std::vector<int>& labels) {
  Tensor features(Shape::Matrix(static_cast<int64_t>(labels.size()), 2));
  for (size_t i = 0; i < labels.size(); ++i) {
    features(static_cast<int64_t>(i), 0) = static_cast<float>(labels[i]);
    features(static_cast<int64_t>(i), 1) = static_cast<float>(i);
  }
  return data::Dataset(features, labels);
}

TEST(DatasetTest, BasicAccessors) {
  data::Dataset ds = MakeDataset({0, 1, 1, 2});
  EXPECT_EQ(ds.size(), 4);
  EXPECT_EQ(ds.num_features(), 2);
  EXPECT_FALSE(ds.empty());
  EXPECT_EQ(ds.label(2), 1);
  EXPECT_EQ(ds.Classes(), (std::vector<int>{0, 1, 2}));
  auto counts = ds.ClassCounts();
  EXPECT_EQ(counts[1], 2);
}

TEST(DatasetTest, SizeLabelMismatchIsFatal) {
  Tensor features(Shape::Matrix(3, 2));
  EXPECT_DEATH(data::Dataset(features, std::vector<int>{0, 1}),
               "CHECK failed");
}

TEST(DatasetTest, FilterByClassKeepsOnlyThatClass) {
  data::Dataset ds = MakeDataset({0, 1, 1, 2, 1});
  data::Dataset ones = ds.FilterByClass(1);
  EXPECT_EQ(ones.size(), 3);
  for (int64_t i = 0; i < ones.size(); ++i) EXPECT_EQ(ones.label(i), 1);
  // Second feature column preserves original row identity.
  EXPECT_EQ(ones.features()(0, 1), 1.0f);
  EXPECT_EQ(ones.features()(2, 1), 4.0f);
}

TEST(DatasetTest, FilterByClassesUnion) {
  data::Dataset ds = MakeDataset({0, 1, 2, 3, 2});
  data::Dataset subset = ds.FilterByClasses({0, 2});
  EXPECT_EQ(subset.size(), 3);
  EXPECT_EQ(subset.Classes(), (std::vector<int>{0, 2}));
}

TEST(DatasetTest, SubsetGathersRowsInOrder) {
  data::Dataset ds = MakeDataset({0, 1, 2});
  data::Dataset subset = ds.Subset({2, 0});
  EXPECT_EQ(subset.labels(), (std::vector<int>{2, 0}));
  EXPECT_EQ(subset.features()(0, 0), 2.0f);
}

TEST(DatasetTest, ConcatStacksRows) {
  data::Dataset a = MakeDataset({0, 0});
  data::Dataset b = MakeDataset({1, 1, 1});
  data::Dataset c = data::Dataset::Concat({a, b});
  EXPECT_EQ(c.size(), 5);
  EXPECT_EQ(c.Classes(), (std::vector<int>{0, 1}));
}

TEST(SplitsTest, StratifiedSplitPreservesClassBalance) {
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    labels.insert(labels.end(), 100, c);
  }
  Rng rng(1);
  data::TrainTestSplit split =
      data::StratifiedSplit(MakeDataset(labels), 0.3, rng);
  EXPECT_EQ(split.train.size(), 210);
  EXPECT_EQ(split.test.size(), 90);
  for (const auto& [label, count] : split.test.ClassCounts()) {
    EXPECT_EQ(count, 30) << "class " << label;
  }
}

TEST(SplitsTest, SplitIsDisjointAndComplete) {
  std::vector<int> labels(50, 0);
  for (int i = 0; i < 50; ++i) labels.push_back(1);
  data::Dataset ds = MakeDataset(labels);
  Rng rng(2);
  data::TrainTestSplit split = data::StratifiedSplit(ds, 0.2, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
  // Row identity lives in feature column 1; check disjointness.
  std::set<float> train_ids;
  for (int64_t i = 0; i < split.train.size(); ++i) {
    train_ids.insert(split.train.features()(i, 1));
  }
  for (int64_t i = 0; i < split.test.size(); ++i) {
    EXPECT_EQ(train_ids.count(split.test.features()(i, 1)), 0u);
  }
}

TEST(SplitsTest, ZeroFractionKeepsEverythingInTrain) {
  Rng rng(3);
  data::Dataset ds = MakeDataset({0, 0, 1, 1});
  data::TrainTestSplit split = data::StratifiedSplit(ds, 0.0, rng);
  EXPECT_EQ(split.train.size(), 4);
  EXPECT_EQ(split.test.size(), 0);
}

TEST(SplitsTest, TinyClassesStillGetATestRow) {
  Rng rng(4);
  data::Dataset ds = MakeDataset({0, 0, 0, 1, 1, 1});
  data::TrainTestSplit split = data::StratifiedSplit(ds, 0.1, rng);
  // 10% of 3 rounds to 0, but each class with >= 2 samples contributes 1.
  EXPECT_EQ(split.test.size(), 2);
}

TEST(SplitsTest, SampleRowsClampsToSize) {
  Rng rng(5);
  data::Dataset ds = MakeDataset({0, 1, 2});
  EXPECT_EQ(data::SampleRows(ds, 10, rng).size(), 3);
  data::Dataset two = data::SampleRows(ds, 2, rng);
  EXPECT_EQ(two.size(), 2);
}

TEST(SplitsTest, SamplePerClassBalances) {
  std::vector<int> labels(20, 0);
  labels.insert(labels.end(), 5, 1);
  Rng rng(6);
  data::Dataset sampled = data::SamplePerClass(MakeDataset(labels), 8, rng);
  auto counts = sampled.ClassCounts();
  EXPECT_EQ(counts[0], 8);
  EXPECT_EQ(counts[1], 5);  // clamped to available
}

TEST(ScalerTest, TransformStandardizesColumns) {
  Rng rng(7);
  Tensor features = Tensor::RandNormal(Shape::Matrix(500, 3), rng, 5.0f, 2.0f);
  data::StandardScaler scaler;
  scaler.Fit(features);
  Tensor scaled = scaler.Transform(features);
  Tensor mean = ColumnMean(scaled);
  Tensor var = ColumnVariance(scaled, mean);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(mean[c], 0.0f, 1e-4f);
    EXPECT_NEAR(var[c], 1.0f, 1e-3f);
  }
}

TEST(ScalerTest, ConstantColumnPassesThroughCentered) {
  Tensor features(Shape::Matrix(4, 1), {3.0f, 3.0f, 3.0f, 3.0f});
  data::StandardScaler scaler;
  scaler.Fit(features);
  Tensor scaled = scaler.Transform(features);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(scaled[i], 0.0f);
}

TEST(ScalerTest, TransformBeforeFitIsFatal) {
  data::StandardScaler scaler;
  EXPECT_DEATH(scaler.Transform(Tensor(Shape::Matrix(2, 2))), "before Fit");
}

TEST(ScalerTest, SetStateRoundTrip) {
  data::StandardScaler scaler;
  scaler.SetState(Tensor(Shape::Vector(2), {1.0f, 2.0f}),
                  Tensor(Shape::Vector(2), {2.0f, 4.0f}));
  Tensor x(Shape::Matrix(1, 2), {3.0f, 10.0f});
  Tensor scaled = scaler.Transform(x);
  EXPECT_FLOAT_EQ(scaled[0], 1.0f);
  EXPECT_FLOAT_EQ(scaled[1], 2.0f);
}

TEST(ScalerTest, DatasetOverloadKeepsLabels) {
  data::Dataset ds = MakeDataset({0, 1, 1});
  data::StandardScaler scaler;
  scaler.Fit(ds.features());
  data::Dataset scaled = scaler.Transform(ds);
  EXPECT_EQ(scaled.labels(), ds.labels());
}

}  // namespace
}  // namespace pilote
