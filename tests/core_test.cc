#include <cmath>
#include <deque>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/edge_profile.h"
#include "core/embedding.h"
#include "core/exemplar_selector.h"
#include "core/ncm_classifier.h"
#include "core/streaming_classifier.h"
#include "core/support_set.h"
#include "core/vote_ring.h"
#include "nn/backbone.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace pilote {
namespace core {
namespace {

// ---------------------------------------------------------------- NCM

TEST(NcmClassifierTest, PredictsNearestPrototype) {
  NcmClassifier ncm;
  ncm.SetPrototype(0, Tensor(Shape::Vector(2), {0.0f, 0.0f}));
  ncm.SetPrototype(1, Tensor(Shape::Vector(2), {10.0f, 0.0f}));
  ncm.SetPrototype(7, Tensor(Shape::Vector(2), {0.0f, 10.0f}));

  Tensor queries(Shape::Matrix(3, 2), {1.0f, 1.0f,    // near 0
                                       9.0f, -1.0f,   // near 1
                                       1.0f, 12.0f}); // near 7
  EXPECT_EQ(ncm.Predict(queries), (std::vector<int>{0, 1, 7}));
}

TEST(NcmClassifierTest, PrototypeFromEmbeddingsIsTheMean) {
  NcmClassifier ncm;
  Tensor embeddings(Shape::Matrix(2, 2), {0.0f, 2.0f, 4.0f, 6.0f});
  ncm.SetPrototypeFromEmbeddings(3, embeddings);
  EXPECT_TRUE(
      AllClose(ncm.prototype(3), Tensor(Shape::Vector(2), {2.0f, 4.0f})));
}

TEST(NcmClassifierTest, ReplacingAPrototypeKeepsOneEntry) {
  NcmClassifier ncm;
  ncm.SetPrototype(1, Tensor(Shape::Vector(2), {1.0f, 1.0f}));
  ncm.SetPrototype(1, Tensor(Shape::Vector(2), {5.0f, 5.0f}));
  EXPECT_EQ(ncm.NumClasses(), 1);
  EXPECT_FLOAT_EQ(ncm.prototype(1)[0], 5.0f);
}

TEST(NcmClassifierTest, LabelsSortedAndDistanceMatrixAligned) {
  NcmClassifier ncm;
  ncm.SetPrototype(5, Tensor(Shape::Vector(1), {5.0f}));
  ncm.SetPrototype(1, Tensor(Shape::Vector(1), {1.0f}));
  EXPECT_EQ(ncm.Labels(), (std::vector<int>{1, 5}));
  Tensor d = ncm.DistanceMatrix(Tensor(Shape::Matrix(1, 1), {1.0f}));
  EXPECT_NEAR(d(0, 0), 0.0f, 1e-5f);
  EXPECT_NEAR(d(0, 1), 16.0f, 1e-4f);
}

TEST(NcmClassifierTest, UnknownLabelIsFatal) {
  NcmClassifier ncm;
  ncm.SetPrototype(0, Tensor(Shape::Vector(1), {0.0f}));
  EXPECT_DEATH(ncm.prototype(9), "no prototype");
}

TEST(NcmClassifierTest, CosineDistanceIsScaleInvariant) {
  NcmClassifier ncm(NcmDistance::kCosine);
  ncm.SetPrototype(0, Tensor(Shape::Vector(2), {1.0f, 0.0f}));
  ncm.SetPrototype(1, Tensor(Shape::Vector(2), {0.0f, 1.0f}));
  // A point along (1, 0.1) is angularly closest to prototype 0 no matter
  // its magnitude — squared Euclidean would flip for large magnitudes.
  Tensor small(Shape::Matrix(1, 2), {0.5f, 0.05f});
  Tensor large(Shape::Matrix(1, 2), {500.0f, 50.0f});
  EXPECT_EQ(ncm.Predict(small), (std::vector<int>{0}));
  EXPECT_EQ(ncm.Predict(large), (std::vector<int>{0}));
}

TEST(NcmClassifierTest, CosineDistanceRange) {
  NcmClassifier ncm(NcmDistance::kCosine);
  ncm.SetPrototype(0, Tensor(Shape::Vector(2), {1.0f, 0.0f}));
  Tensor aligned(Shape::Matrix(3, 2), {2.0f, 0.0f,    // same direction
                                       0.0f, 3.0f,    // orthogonal
                                       -1.0f, 0.0f}); // opposite
  Tensor d = ncm.DistanceMatrix(aligned);
  EXPECT_NEAR(d(0, 0), 0.0f, 1e-5f);
  EXPECT_NEAR(d(1, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(d(2, 0), 2.0f, 1e-5f);
}

TEST(NcmClassifierTest, ZeroVectorUnderCosineIsNotFavored) {
  NcmClassifier ncm(NcmDistance::kCosine);
  ncm.SetPrototype(0, Tensor(Shape::Vector(2), {1.0f, 0.0f}));
  Tensor zero(Shape::Matrix(1, 2), {0.0f, 0.0f});
  Tensor d = ncm.DistanceMatrix(zero);
  EXPECT_FLOAT_EQ(d(0, 0), 1.0f);
}

TEST(NcmClassifierTest, StorageBytesCountsPrototypes) {
  NcmClassifier ncm;
  ncm.SetPrototype(0, Tensor(Shape::Vector(128)));
  ncm.SetPrototype(1, Tensor(Shape::Vector(128)));
  EXPECT_EQ(ncm.StorageBytes(), 2 * 128 * 4);
}

// ---------------------------------------------------------------- Herding

TEST(VoteRingTest, MatchesReferenceMajorityVote) {
  // The allocation-free ring must agree with the std::deque reference
  // implementation on random label streams across capacities, including
  // the partially-filled warm-up phase and every tie case that shows up.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int capacity = rng.UniformInt(1, 8);
    VoteRing ring(capacity);
    std::deque<int> recent;
    for (int step = 0; step < 64; ++step) {
      const int label = rng.UniformInt(0, 4);
      ring.Push(label);
      recent.push_back(label);
      if (static_cast<int>(recent.size()) > capacity) recent.pop_front();
      ASSERT_EQ(ring.MajorityLabel(), MajorityVoteLabel(recent))
          << "capacity=" << capacity << " step=" << step;
    }
  }
}

TEST(VoteRingTest, TieBreaksTowardMostRecentLabel) {
  VoteRing ring(4);
  ring.Push(1);
  ring.Push(2);
  ring.Push(1);
  ring.Push(2);  // 1 and 2 tie at two votes each; 2 is most recent
  EXPECT_EQ(ring.MajorityLabel(), 2);
}

TEST(VoteRingTest, OldLabelsFallOutOfTheWindow) {
  VoteRing ring(3);
  ring.Push(7);
  ring.Push(7);
  ring.Push(7);
  EXPECT_EQ(ring.MajorityLabel(), 7);
  ring.Push(5);
  ring.Push(5);  // window now {7, 5, 5}
  EXPECT_EQ(ring.MajorityLabel(), 5);
}

TEST(VoteRingTest, EmptyMajorityIsFatal) {
  VoteRing ring(3);
  EXPECT_DEATH(ring.MajorityLabel(), "");
}

TEST(HerdingTest, SelectsRequestedCountOfDistinctRows) {
  Rng rng(1);
  Tensor embeddings = Tensor::RandNormal(Shape::Matrix(30, 4), rng);
  std::vector<int64_t> selected = HerdingSelect(embeddings, 10);
  ASSERT_EQ(selected.size(), 10u);
  std::set<int64_t> unique(selected.begin(), selected.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(HerdingTest, FirstPickIsClosestToMean) {
  Tensor embeddings(Shape::Matrix(3, 1), {0.0f, 1.0f, 5.0f});
  // mean = 2; closest single point is 1.0 (row 1).
  std::vector<int64_t> selected = HerdingSelect(embeddings, 1);
  EXPECT_EQ(selected[0], 1);
}

TEST(HerdingTest, PrefixApproximatesMeanBetterThanRandomOnAverage) {
  Rng rng(2);
  Tensor embeddings = Tensor::RandNormal(Shape::Matrix(100, 8), rng);
  Tensor mu = ColumnMean(embeddings);
  const int m = 5;

  std::vector<int64_t> herd = HerdingSelect(embeddings, m);
  Tensor herd_mean = ColumnMean(GatherRows(embeddings, herd));
  const float herd_err = SquaredDistance(herd_mean, mu);

  double random_err = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> pick = rng.SampleWithoutReplacement(100, m);
    Tensor mean = ColumnMean(
        GatherRows(embeddings, std::vector<int64_t>(pick.begin(), pick.end())));
    random_err += SquaredDistance(mean, mu);
  }
  random_err /= 20.0;
  EXPECT_LT(herd_err, random_err);
}

TEST(HerdingTest, CountClampedToAvailableRows) {
  Rng rng(3);
  Tensor embeddings = Tensor::RandNormal(Shape::Matrix(4, 2), rng);
  EXPECT_EQ(HerdingSelect(embeddings, 100).size(), 4u);
}

TEST(SelectExemplarsTest, RandomStrategyIsDeterministicPerSeed) {
  Rng model_rng(4);
  nn::MlpBackbone model(nn::BackboneConfig::Small(), model_rng);
  Rng a(7);
  Rng b(7);
  Tensor features = Tensor::RandNormal(Shape::Matrix(20, 80), model_rng);
  EXPECT_EQ(SelectExemplars(model, features, 5, SelectionStrategy::kRandom, a),
            SelectExemplars(model, features, 5, SelectionStrategy::kRandom, b));
}

TEST(SelectExemplarsTest, RepresentativeUsesEmbeddingSpace) {
  Rng rng(5);
  nn::MlpBackbone model(nn::BackboneConfig::Small(), rng);
  Tensor features = Tensor::RandNormal(Shape::Matrix(25, 80), rng);
  std::vector<int64_t> selected = SelectExemplars(
      model, features, 8, SelectionStrategy::kRepresentative, rng);
  ASSERT_EQ(selected.size(), 8u);
  // Equivalent to herding on the model's embeddings.
  Tensor embeddings = EmbedBatched(model, features);
  EXPECT_EQ(selected, HerdingSelect(embeddings, 8));
}

// ---------------------------------------------------------------- SupportSet

TEST(SupportSetTest, AddQueryAndFlatten) {
  SupportSet support;
  support.SetClassExemplars(0, Tensor(Shape::Matrix(3, 2), 1.0f));
  support.SetClassExemplars(4, Tensor(Shape::Matrix(2, 2), 4.0f));
  EXPECT_EQ(support.NumClasses(), 2);
  EXPECT_EQ(support.TotalExemplars(), 5);
  EXPECT_EQ(support.CountForClass(4), 2);
  EXPECT_EQ(support.CountForClass(9), 0);
  EXPECT_EQ(support.Classes(), (std::vector<int>{0, 4}));

  data::Dataset flat = support.ToDataset();
  EXPECT_EQ(flat.size(), 5);
  EXPECT_EQ(flat.ClassCounts()[0], 3);
  EXPECT_EQ(flat.ClassCounts()[4], 2);
}

TEST(SupportSetTest, TrimKeepsPrefix) {
  SupportSet support;
  Tensor rows(Shape::Matrix(4, 1), {0.0f, 1.0f, 2.0f, 3.0f});
  support.SetClassExemplars(0, rows);
  support.TrimPerClass(2);
  EXPECT_EQ(support.CountForClass(0), 2);
  EXPECT_FLOAT_EQ(support.ClassExemplars(0)(1, 0), 1.0f);
}

TEST(SupportSetTest, EnforceCacheSizeSplitsEvenly) {
  SupportSet support;
  support.SetClassExemplars(0, Tensor(Shape::Matrix(50, 2)));
  support.SetClassExemplars(1, Tensor(Shape::Matrix(50, 2)));
  support.SetClassExemplars(2, Tensor(Shape::Matrix(50, 2)));
  support.EnforceCacheSize(60);  // m = 60 / 3 = 20
  for (int label : {0, 1, 2}) {
    EXPECT_EQ(support.CountForClass(label), 20);
  }
}

TEST(SupportSetTest, CacheSmallerThanClassCountIsFatal) {
  SupportSet support;
  support.SetClassExemplars(0, Tensor(Shape::Matrix(5, 2)));
  support.SetClassExemplars(1, Tensor(Shape::Matrix(5, 2)));
  support.SetClassExemplars(2, Tensor(Shape::Matrix(5, 2)));
  EXPECT_DEATH(support.EnforceCacheSize(2), "too small");
}

TEST(SupportSetTest, FeatureDimMismatchIsFatal) {
  SupportSet support;
  support.SetClassExemplars(0, Tensor(Shape::Matrix(2, 3)));
  EXPECT_DEATH(support.SetClassExemplars(1, Tensor(Shape::Matrix(2, 4))),
               "dimension mismatch");
}

TEST(SupportSetTest, StorageShrinksWithQuantization) {
  Rng rng(6);
  SupportSet support;
  support.SetClassExemplars(
      0, Tensor::RandNormal(Shape::Matrix(200, 80), rng));
  const int64_t fp32 = support.StorageBytes(serialize::QuantMode::kFloat32);
  const int64_t fp16 = support.StorageBytes(serialize::QuantMode::kFloat16);
  const int64_t int8 = support.StorageBytes(serialize::QuantMode::kInt8);
  EXPECT_GT(fp32, fp16);
  EXPECT_GT(fp16, int8);
}

TEST(SupportSetTest, QuantizeRoundTripApproximatesFeatures) {
  Rng rng(7);
  SupportSet support;
  Tensor original = Tensor::RandNormal(Shape::Matrix(10, 8), rng);
  support.SetClassExemplars(0, original);
  SupportSet compressed =
      support.QuantizeRoundTrip(serialize::QuantMode::kFloat16);
  EXPECT_TRUE(
      AllClose(compressed.ClassExemplars(0), original, 1e-2f, 1e-2f));
}

// ---------------------------------------------------------------- Embed

TEST(EmbedTest, BatchedMatchesSinglePass) {
  Rng rng(8);
  nn::MlpBackbone model(nn::BackboneConfig::Small(), rng);
  Tensor features = Tensor::RandNormal(Shape::Matrix(23, 80), rng);
  Tensor full = Embed(model, features);
  Tensor chunked = EmbedBatched(model, features, 7);
  EXPECT_TRUE(AllClose(full, chunked, 1e-5f));
}

TEST(EmbedTest, RestoresTrainingMode) {
  Rng rng(9);
  nn::MlpBackbone model(nn::BackboneConfig::Small(), rng);
  model.SetTraining(true);
  Embed(model, Tensor::RandNormal(Shape::Matrix(4, 80), rng));
  EXPECT_TRUE(model.training());
  model.SetTraining(false);
  Embed(model, Tensor::RandNormal(Shape::Matrix(4, 80), rng));
  EXPECT_FALSE(model.training());
}

TEST(EmbedTest, OutputDimensionMatchesConfig) {
  Rng rng(10);
  nn::BackboneConfig config = nn::BackboneConfig::Small();
  nn::MlpBackbone model(config, rng);
  Tensor out = Embed(model, Tensor::RandNormal(Shape::Matrix(3, 80), rng));
  EXPECT_EQ(out.cols(), config.embedding_dim);
}

TEST(EdgeProfileReportTest, UntrainedEpochTimeIsNaNAndPrintsNa) {
  EdgeProfileReport report;
  EXPECT_TRUE(std::isnan(report.train_epoch_seconds));
  const std::string text = report.ToString();
  EXPECT_NE(text.find("training: n/a"), std::string::npos);
  EXPECT_EQ(text.find("s/epoch"), std::string::npos);
}

TEST(EdgeProfileReportTest, TrainedEpochTimePrintsSeconds) {
  EdgeProfileReport report;
  report.train_epoch_seconds = 0.25;
  const std::string text = report.ToString();
  EXPECT_NE(text.find("s/epoch"), std::string::npos);
  EXPECT_EQ(text.find("n/a"), std::string::npos);
}

TEST(EdgeProfileReportTest, ToStringCarriesLatencyPercentiles) {
  EdgeProfileReport report;
  report.inference_ms_per_window = 1.0;
  report.inference_p50_ms = 0.9;
  report.inference_p95_ms = 1.4;
  report.inference_p99_ms = 1.9;
  const std::string text = report.ToString();
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace pilote
