// Deterministic chaos suite: every registered failpoint is driven through
// the full device lifecycle — cloud pretrain, artifact save/load,
// incremental learning, support-set update, serving — and must surface as
// a clean Status with verified rollback, never a crash, torn state or
// garbage read. A clean rerun after each injected fault must match the
// fault-free baseline bit for bit. Runs under ASan/UBSan in CI (label
// "chaos"), where the sanitizers double as the no-UB oracle.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/rng.h"
#include "core/artifact_io.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "har/har_dataset.h"
#include "obs/metrics.h"
#include "serve/learner_handle.h"
#include "serve/session_manager.h"
#include "serve/types.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

using core::CloudArtifact;
using core::PiloteConfig;
using fail::FailpointRegistry;
using fail::FailpointSpec;
using fail::FailpointStats;
using har::Activity;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// One cloud pretrain shared by every drill: each cycle re-loads the
// artifact from disk and builds a fresh learner, so reusing the artifact
// loses no coverage while keeping the per-failpoint iteration cheap.
class ChaosTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    state_ = new State();
    state_->config = PiloteConfig::Small();
    state_->config.exemplars_per_class = 20;
    har::HarDataGenerator generator(1234);
    data::Dataset d_old = generator.GenerateBalanced(
        60, {Activity::kDrive, Activity::kEscooter, Activity::kStill,
             Activity::kWalk});
    state_->d_new = generator.Generate(Activity::kRun, 30);
    state_->probe = generator.GenerateBalanced(8).features();
    core::CloudPretrainer pretrainer(state_->config);
    Result<core::CloudPretrainResult> pretrain = pretrainer.Run(d_old);
    PILOTE_CHECK(pretrain.ok()) << pretrain.status().ToString();
    state_->artifact = std::move(pretrain).value().artifact;
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    PiloteConfig config;
    CloudArtifact artifact;
    data::Dataset d_new;
    Tensor probe;
  };
  static State* state_;
};

ChaosTest::State* ChaosTest::state_ = nullptr;

// Runs one full save -> load -> learn -> support-update -> serve cycle.
// Returns the first non-OK Status; at every fallible stage the rollback
// contract is asserted in place (failed learner mutations must leave the
// class list and the predictions on `probe` untouched).
Status RunCycle(const ChaosTest::State& state, const std::string& path,
                std::vector<int>* predictions_out) {
  PILOTE_RETURN_IF_ERROR(core::SaveArtifact(path, state.artifact));
  Result<CloudArtifact> loaded = core::LoadArtifact(path);
  PILOTE_RETURN_IF_ERROR(loaded.status());
  Result<std::unique_ptr<core::EdgeLearner>> made =
      core::MakeEdgeLearner("pretrained", loaded.value(), state.config);
  PILOTE_RETURN_IF_ERROR(made.status());
  std::unique_ptr<core::EdgeLearner> learner = std::move(made).value();

  const std::vector<int> pre_known = learner->known_classes();
  const std::vector<int> pre_predictions = learner->Predict(state.probe);
  Result<core::TrainReport> learned = learner->LearnNewClasses(state.d_new);
  if (!learned.ok()) {
    EXPECT_EQ(learner->known_classes(), pre_known)
        << "failed LearnNewClasses must roll back the class list";
    EXPECT_EQ(learner->Predict(state.probe), pre_predictions)
        << "failed LearnNewClasses must roll back model/prototype state";
    return learned.status();
  }

  const std::vector<int> post_known = learner->known_classes();
  const std::vector<int> post_predictions = learner->Predict(state.probe);
  Status applied = learner->ApplySupportSetUpdate(learner->support());
  if (!applied.ok()) {
    EXPECT_EQ(learner->known_classes(), post_known)
        << "failed ApplySupportSetUpdate must leave the learner untouched";
    EXPECT_EQ(learner->Predict(state.probe), post_predictions)
        << "failed ApplySupportSetUpdate must leave the classifier untouched";
    return applied;
  }

  serve::LearnerHandle handle(std::move(learner));
  Result<std::vector<int>> served = handle.TryPredictBatch(state.probe);
  PILOTE_RETURN_IF_ERROR(served.status());
  if (predictions_out != nullptr) *predictions_out = served.value();
  return Status::Ok();
}

int64_t FiresFor(const std::string& name) {
  for (const FailpointStats& stats : FailpointRegistry::Global().Stats()) {
    if (stats.name == name) return stats.fires;
  }
  return -1;
}

TEST_F(ChaosTest, EveryRegisteredFailpointFailsCleanlyThenRecovers) {
  fail::ScopedFailpoints scope;
  const std::string path = TempPath("pilote_chaos_artifact.bin");

  // Warmup: one clean cycle with the subsystem enabled but nothing armed
  // registers every failpoint site and pins the fault-free baseline.
  std::vector<int> baseline;
  Status warmup = RunCycle(*state_, path, &baseline);
  ASSERT_TRUE(warmup.ok()) << warmup.ToString();
  ASSERT_FALSE(baseline.empty());

  const std::vector<std::string> names = FailpointRegistry::Global().Names();
  // The full production inventory must be covered; a new PILOTE_FAILPOINT
  // off the lifecycle path shows up here as a registered-but-never-fired
  // name and fails the drill below.
  const std::vector<std::string> expected = {
      "core/artifact/load",       "core/artifact/save",
      "core/learn/begin",         "core/learn/commit",
      "core/learn/mid",           "core/support_update/begin",
      "core/support_update/embed", "serialize/atomic/open",
      "serialize/atomic/rename",  "serialize/atomic/torn",
      "serialize/atomic/write",   "serve/predict"};
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "failpoint '" << name << "' was not registered by the warmup cycle";
  }

  for (const std::string& name : names) {
    SCOPED_TRACE("failpoint: " + name);
    const int64_t fires_before = FiresFor(name);
    ASSERT_TRUE(
        FailpointRegistry::Global().Arm(name, FailpointSpec::Once()).ok());

    // Faulted cycle: the single injected fault must surface as the cycle's
    // Status, attributed to this site — never swallowed, never a crash.
    Status faulted = RunCycle(*state_, path, nullptr);
    ASSERT_FALSE(faulted.ok())
        << "injected fault was swallowed somewhere in the cycle";
    EXPECT_EQ(faulted.code(), StatusCode::kIoError);
    EXPECT_NE(faulted.message().find("'" + name + "'"), std::string::npos)
        << "surfaced status does not name the fired failpoint: "
        << faulted.ToString();
    EXPECT_EQ(FiresFor(name), fires_before + 1);

    // Whatever the fault left on disk must load cleanly or fail cleanly —
    // kDataLoss for a torn file, never garbage fed to the learner.
    Result<CloudArtifact> reread = core::LoadArtifact(path);
    if (!reread.ok()) {
      EXPECT_EQ(reread.status().code(), StatusCode::kDataLoss)
          << reread.status().ToString();
    }

    // Recovery: with the fault spent, the same cycle must succeed and
    // reproduce the fault-free baseline exactly.
    FailpointRegistry::Global().Disarm(name);
    std::vector<int> recovered;
    Status clean = RunCycle(*state_, path, &recovered);
    EXPECT_TRUE(clean.ok()) << clean.ToString();
    EXPECT_EQ(recovered, baseline)
        << "post-recovery predictions diverged from the baseline";
  }
  std::remove(path.c_str());
}

TEST_F(ChaosTest, TornArtifactWriteIsDetectedAsDataLossNotGarbage) {
  fail::ScopedFailpoints scope;
  const std::string path = TempPath("pilote_chaos_torn.bin");
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Arm("serialize/atomic/torn", FailpointSpec::Once())
                  .ok());
  Status save = core::SaveArtifact(path, state_->artifact);
  ASSERT_FALSE(save.ok());
  Result<CloudArtifact> loaded = core::LoadArtifact(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);

  // The retry overwrites the torn file atomically; the artifact is whole
  // again and serves the same model.
  ASSERT_TRUE(core::SaveArtifact(path, state_->artifact).ok());
  Result<CloudArtifact> retried = core::LoadArtifact(path);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->model_payload, state_->artifact.model_payload);
  std::remove(path.c_str());
}

// An interrupted save must never clobber the previous good artifact: any
// failure injected before the final-rename commit leaves the old file
// loading bit-identically.
TEST_F(ChaosTest, FailedSavePreservesThePreviousArtifact) {
  fail::ScopedFailpoints scope;
  const std::string path = TempPath("pilote_chaos_preserve.bin");
  ASSERT_TRUE(core::SaveArtifact(path, state_->artifact).ok());
  for (const char* name :
       {"serialize/atomic/open", "serialize/atomic/write",
        "serialize/atomic/rename", "core/artifact/save"}) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(
        FailpointRegistry::Global().Arm(name, FailpointSpec::Once()).ok());
    ASSERT_FALSE(core::SaveArtifact(path, state_->artifact).ok());
    Result<CloudArtifact> loaded = core::LoadArtifact(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->model_payload, state_->artifact.model_payload);
  }
  std::remove(path.c_str());
}

// Transient kUnavailable faults on the serving forward pass are absorbed
// by the batching engine's bounded retry: every request still completes
// with a real prediction and the recovery is visible in the metrics.
TEST_F(ChaosTest, BatchingEngineRetriesTransientPredictFaults) {
  fail::ScopedFailpoints scope;
  obs::ScopedEnable metrics;
  obs::MetricsRegistry::Global().ResetForTesting();
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromString("serve/predict=nth:2:unavailable")
                  .ok());

  Result<std::unique_ptr<core::EdgeLearner>> made =
      core::MakeEdgeLearner("pretrained", state_->artifact, state_->config);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto handle =
      std::make_shared<serve::LearnerHandle>(std::move(made).value());

  serve::ServeOptions options;
  options.retry_backoff_us = 0;  // no real sleeping in tests
  {
    serve::SessionManager manager(options);
    Result<serve::SessionId> id =
        manager.CreateSession(handle, state_->config.streaming);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    Rng rng(99);
    for (int i = 0; i < 8; ++i) {
      Tensor window = Tensor::RandNormal(
          Shape::Matrix(1, state_->config.backbone.input_dim), rng);
      Result<std::future<int>> pending = manager.SubmitWindow(*id, window);
      ASSERT_TRUE(pending.ok()) << pending.status().ToString();
      // Waiting serializes the batches, so with nth:2 every second batch
      // faults once and is recovered by the first retry.
      EXPECT_NE(pending->get(), serve::kNoPrediction);
    }
    ASSERT_TRUE(manager.CloseSession(*id).ok());
  }

  const int64_t injected = obs::MetricsRegistry::Global()
                               .GetCounter("serve/faults_injected")
                               .value();
  const int64_t recovered =
      obs::MetricsRegistry::Global().GetCounter("serve/recoveries").value();
  EXPECT_GE(injected, 4);
  EXPECT_EQ(recovered, injected)
      << "every transient fault must be recovered by a retry";
}

// With the fault no longer transient, the retry budget exhausts and the
// request degrades to the session's last smoothed label instead of
// wedging the stream.
TEST_F(ChaosTest, ExhaustedRetriesDegradeInsteadOfWedging) {
  fail::ScopedFailpoints scope;
  obs::ScopedEnable metrics;
  obs::MetricsRegistry::Global().ResetForTesting();

  Result<std::unique_ptr<core::EdgeLearner>> made =
      core::MakeEdgeLearner("pretrained", state_->artifact, state_->config);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto handle =
      std::make_shared<serve::LearnerHandle>(std::move(made).value());

  serve::ServeOptions options;
  options.predict_retries = 2;
  options.retry_backoff_us = 0;
  {
    serve::SessionManager manager(options);
    Result<serve::SessionId> id =
        manager.CreateSession(handle, state_->config.streaming);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    Rng rng(7);
    Tensor window = Tensor::RandNormal(
        Shape::Matrix(1, state_->config.backbone.input_dim), rng);

    // A healthy window first, so the degraded path has a label to fall
    // back on.
    Result<std::future<int>> healthy = manager.SubmitWindow(*id, window);
    ASSERT_TRUE(healthy.ok());
    const int last_label = healthy->get();
    ASSERT_NE(last_label, serve::kNoPrediction);

    ASSERT_TRUE(FailpointRegistry::Global()
                    .ArmFromString("serve/predict=always:unavailable")
                    .ok());
    Result<std::future<int>> degraded = manager.SubmitWindow(*id, window);
    ASSERT_TRUE(degraded.ok());
    EXPECT_EQ(degraded->get(), last_label);
    FailpointRegistry::Global().DisarmAll();
    ASSERT_TRUE(manager.CloseSession(*id).ok());
  }

  const int64_t injected = obs::MetricsRegistry::Global()
                               .GetCounter("serve/faults_injected")
                               .value();
  const int64_t recovered =
      obs::MetricsRegistry::Global().GetCounter("serve/recoveries").value();
  // 1 initial failure + 2 retries + 1 terminal accounting tick.
  EXPECT_GE(injected, 3);
  EXPECT_EQ(recovered, 0);
}

}  // namespace
}  // namespace pilote
