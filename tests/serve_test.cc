// Tests of the multi-session serving layer: concurrent ingest across
// sessions (exercised under TSan in CI), cross-stream batching
// equivalence, backpressure, deadline degradation, and the Status-based
// error paths of the core entry points (corrupt artifacts, bad pretrain
// corpora) that previously aborted.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_tracker.h"
#include "common/bounded_queue.h"
#include "common/rng.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "har/feature_extractor.h"
#include "har/sensor_layout.h"
#include "nn/backbone.h"
#include "obs/metrics.h"
#include "serialize/io.h"
#include "serve/session_manager.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace serve {
namespace {

using std::chrono::microseconds;

// Handcrafts a valid CloudArtifact without running cloud pre-training:
// a randomly initialized backbone (serialized, as shipped), a scaler fit
// on random data, and per-class exemplar clusters offset by label so the
// NCM geometry is non-degenerate. Keeps the serving tests fast enough to
// run under TSan.
core::CloudArtifact MakeTestArtifact(const core::PiloteConfig& config,
                                     int num_classes = 4) {
  Rng rng(4242);
  nn::MlpBackbone model(config.backbone, rng);
  core::CloudArtifact artifact;
  artifact.backbone_config = config.backbone;
  artifact.model_payload = serialize::SerializeModuleToString(model);
  const int64_t input_dim = config.backbone.input_dim;
  artifact.scaler.Fit(Tensor::RandNormal(Shape::Matrix(64, input_dim), rng));
  for (int label = 0; label < num_classes; ++label) {
    Tensor exemplars =
        Tensor::RandNormal(Shape::Matrix(8, input_dim), rng,
                           /*mean=*/static_cast<float>(2 * label), 0.25f);
    artifact.support.SetClassExemplars(label,
                                       artifact.scaler.Transform(exemplars));
    artifact.old_classes.push_back(label);
  }
  return artifact;
}

core::PiloteConfig TestConfig() { return core::PiloteConfig::Small(); }

std::shared_ptr<LearnerHandle> MakeHandle(const core::PiloteConfig& config) {
  Result<std::shared_ptr<LearnerHandle>> handle =
      LearnerHandle::Create("pretrained", MakeTestArtifact(config), config);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  return handle.value();
}

Tensor RandomWindow(const core::PiloteConfig& config, Rng& rng) {
  return Tensor::RandNormal(
      Shape::Matrix(1, config.backbone.input_dim), rng);
}

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueueTest, TryPushFailsAtCapacityAndAfterClose) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  queue.Close();
  std::vector<int> out;
  EXPECT_TRUE(queue.PopBatch(out, 8, microseconds(0)));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(queue.TryPush(4));  // closed
  EXPECT_FALSE(queue.PopBatch(out, 8, microseconds(0)));  // drained
}

TEST(BoundedQueueTest, PopBatchCoalescesUpToMaxBatch) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));
  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(out, 3, microseconds(0)));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  ASSERT_TRUE(queue.PopBatch(out, 3, microseconds(0)));
  EXPECT_EQ(out, (std::vector<int>{3, 4}));
}

// Interrupt() racing concurrent producers and the consumer: interrupts may
// surface as empty batches but must never drop or duplicate an item, and
// Close() must still terminate the consumer loop. Runs under TSan in CI,
// where it also exercises the CondVar adopt/release handoff in
// common/thread_annotations.h.
TEST(BoundedQueueTest, InterruptRacesConcurrentPushPop) {
  constexpr int kProducers = 4;
  constexpr int kItemsPerProducer = 2000;
  BoundedQueue<int> queue(64);

  std::atomic<bool> done{false};
  std::thread interrupter([&done, &queue] {
    while (!done.load(std::memory_order_acquire)) {
      queue.Interrupt();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        // Producers never block; spin until the consumer makes room.
        while (!queue.TryPush(p * kItemsPerProducer + i)) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::int64_t sum = 0;
  int consumed = 0;
  std::thread consumer([&queue, &sum, &consumed] {
    std::vector<int> batch;
    // Interrupted pops legitimately return true with an empty batch; the
    // loop only ends once the queue is closed and drained.
    while (queue.PopBatch(batch, 16, microseconds(200))) {
      consumed += static_cast<int>(batch.size());
      for (int v : batch) sum += v;
    }
  });

  for (auto& t : producers) t.join();
  queue.Close();
  consumer.join();
  done.store(true, std::memory_order_release);
  interrupter.join();

  constexpr int kTotal = kProducers * kItemsPerProducer;
  EXPECT_EQ(consumed, kTotal);
  EXPECT_EQ(sum, static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
  EXPECT_EQ(queue.size(), 0u);
}

// ----------------------------------------------------- Options validation

TEST(ServeOptionsTest, ValidateRejectsOutOfRangeValues) {
  ServeOptions options;
  EXPECT_TRUE(ValidateServeOptions(options).ok());
  options.num_shards = 0;
  EXPECT_EQ(ValidateServeOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = ServeOptions();
  options.max_batch = 0;
  EXPECT_EQ(ValidateServeOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = ServeOptions();
  options.max_delay_us = -1;
  EXPECT_EQ(ValidateServeOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = ServeOptions();
  options.queue_capacity = 0;
  EXPECT_EQ(ValidateServeOptions(options).code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingOptionsTest, ValidateRejectsOutOfRangeValues) {
  core::StreamingOptions options;
  EXPECT_TRUE(core::ValidateStreamingOptions(options).ok());
  options.window_length = 0;
  EXPECT_EQ(core::ValidateStreamingOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = core::StreamingOptions();
  options.vote_window = 0;
  EXPECT_EQ(core::ValidateStreamingOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = core::StreamingOptions();
  options.denoise_half_width = -1;
  EXPECT_EQ(core::ValidateStreamingOptions(options).code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- Core error paths

TEST(CoreErrorPathTest, FactoryRejectsCorruptArtifactPayload) {
  core::PiloteConfig config = TestConfig();
  core::CloudArtifact artifact = MakeTestArtifact(config);
  artifact.model_payload = "definitely not a serialized module";
  Result<std::unique_ptr<core::EdgeLearner>> made =
      core::MakeEdgeLearner("pilote", artifact, config);
  EXPECT_FALSE(made.ok());
}

TEST(CoreErrorPathTest, FactoryRejectsTruncatedArtifactPayload) {
  core::PiloteConfig config = TestConfig();
  core::CloudArtifact artifact = MakeTestArtifact(config);
  artifact.model_payload.resize(artifact.model_payload.size() / 2);
  Result<std::unique_ptr<core::EdgeLearner>> made =
      core::MakeEdgeLearner("pretrained", artifact, config);
  EXPECT_FALSE(made.ok());
}

TEST(CoreErrorPathTest, FactoryRejectsEmptySupportSet) {
  core::PiloteConfig config = TestConfig();
  core::CloudArtifact artifact = MakeTestArtifact(config);
  artifact.support = core::SupportSet();
  Result<std::unique_ptr<core::EdgeLearner>> made =
      core::MakeEdgeLearner("pilote", artifact, config);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoreErrorPathTest, PretrainerRejectsEmptyCorpus) {
  core::CloudPretrainer pretrainer(TestConfig());
  Result<core::CloudPretrainResult> result = pretrainer.Run(data::Dataset());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoreErrorPathTest, PretrainerRejectsSingleClassCorpus) {
  core::PiloteConfig config = TestConfig();
  Rng rng(7);
  data::Dataset single(
      Tensor::RandNormal(Shape::Matrix(10, config.backbone.input_dim), rng),
      std::vector<int>(10, 3));
  core::CloudPretrainer pretrainer(config);
  Result<core::CloudPretrainResult> result = pretrainer.Run(single);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------- SessionManager

TEST(SessionManagerTest, CreateSubmitClose) {
  core::PiloteConfig config = TestConfig();
  SessionManager manager(ServeOptions{});
  Result<SessionId> id =
      manager.CreateSession(MakeHandle(config), config.streaming);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(manager.NumSessions(), 1);

  Rng rng(1);
  Result<std::future<int>> future =
      manager.SubmitWindow(*id, RandomWindow(config, rng));
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  const int label = future.value().get();
  EXPECT_GE(label, 0);

  EXPECT_TRUE(manager.CloseSession(*id).ok());
  EXPECT_EQ(manager.NumSessions(), 0);
  EXPECT_EQ(manager.CloseSession(*id).code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.SubmitWindow(*id, RandomWindow(config, rng))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SessionManagerTest, RejectsNullHandleAndBadOptions) {
  core::PiloteConfig config = TestConfig();
  SessionManager manager(ServeOptions{});
  EXPECT_EQ(manager.CreateSession(nullptr, config.streaming).status().code(),
            StatusCode::kInvalidArgument);
  core::StreamingOptions bad = config.streaming;
  bad.vote_window = 0;
  EXPECT_EQ(manager.CreateSession(MakeHandle(config), bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionManagerTest, SubmitRejectsWrongShape) {
  core::PiloteConfig config = TestConfig();
  SessionManager manager(ServeOptions{});
  Result<SessionId> id =
      manager.CreateSession(MakeHandle(config), config.streaming);
  ASSERT_TRUE(id.ok());
  Rng rng(1);
  Tensor bad = Tensor::RandNormal(
      Shape::Matrix(1, config.backbone.input_dim + 1), rng);
  EXPECT_EQ(manager.SubmitWindow(*id, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionManagerTest, PushBlockAssemblesWindowsFromRawSamples) {
  core::PiloteConfig config = TestConfig();
  SessionManager manager(ServeOptions{});
  Result<SessionId> id =
      manager.CreateSession(MakeHandle(config), config.streaming);
  ASSERT_TRUE(id.ok());
  Rng rng(11);
  const int64_t rows = 3 * config.streaming.window_length + 5;
  Tensor samples =
      Tensor::RandNormal(Shape::Matrix(rows, har::kNumChannels), rng);
  Result<PushOutcome> outcome =
      manager.PushBlock(*id, samples, microseconds(0));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->predictions.size(), 3u);
  EXPECT_EQ(outcome->rejected_windows, 0);
  for (const Prediction& p : outcome->predictions) {
    EXPECT_GE(p.label, 0);
    EXPECT_FALSE(p.degraded);
  }
}

// --------------------------------------------- Batched == unbatched labels

TEST(SessionManagerTest, BatchedMatchesUnbatchedPredictions) {
  core::PiloteConfig config = TestConfig();
  // vote_window = 1 so the smoothed label equals the raw label and the
  // manager's output is directly comparable to PredictBatch.
  core::StreamingOptions streaming = config.streaming;
  streaming.vote_window = 1;
  std::shared_ptr<LearnerHandle> handle = MakeHandle(config);

  Rng rng(33);
  constexpr int kWindows = 24;
  std::vector<Tensor> windows;
  for (int i = 0; i < kWindows; ++i) {
    windows.push_back(RandomWindow(config, rng));
  }
  const std::vector<int> direct = handle->PredictBatch(ConcatRows(windows));
  ASSERT_EQ(direct.size(), static_cast<size_t>(kWindows));

  ServeOptions options;
  options.max_batch = 8;
  SessionManager manager(options);
  Result<SessionId> id = manager.CreateSession(handle, streaming);
  ASSERT_TRUE(id.ok());
  std::vector<std::future<int>> futures;
  for (const Tensor& window : windows) {
    Result<std::future<int>> f = manager.SubmitWindow(*id, window);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(std::move(f).value());
  }
  for (int i = 0; i < kWindows; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(),
              direct[static_cast<size_t>(i)])
        << "window " << i;
  }
}

// ------------------------------------------------------------ Concurrency

TEST(SessionManagerTest, ConcurrentMultiSessionIngest) {
  core::PiloteConfig config = TestConfig();
  std::shared_ptr<LearnerHandle> handle = MakeHandle(config);
  ServeOptions options;
  options.max_batch = 8;
  options.queue_capacity = 1024;
  SessionManager manager(options);

  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 2;
  constexpr int kWindowsPerSession = 12;
  std::vector<SessionId> ids;
  for (int i = 0; i < kThreads * kSessionsPerThread; ++i) {
    Result<SessionId> id = manager.CreateSession(handle, config.streaming);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::atomic<int> resolved{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, &manager, &config, &resolved, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      std::vector<std::future<int>> futures;
      for (int w = 0; w < kWindowsPerSession; ++w) {
        for (int s = 0; s < kSessionsPerThread; ++s) {
          const SessionId id =
              ids[static_cast<size_t>(t * kSessionsPerThread + s)];
          Result<std::future<int>> f =
              manager.SubmitWindow(id, RandomWindow(config, rng));
          if (f.ok()) futures.push_back(std::move(f).value());
        }
      }
      for (std::future<int>& f : futures) {
        if (f.get() >= 0) resolved.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(resolved.load(),
            kThreads * kSessionsPerThread * kWindowsPerSession);
}

TEST(SessionManagerTest, LearnNewClassesQuiescesConcurrentIngest) {
  core::PiloteConfig config = TestConfig();
  std::shared_ptr<LearnerHandle> handle = MakeHandle(config);
  ServeOptions options;
  options.queue_capacity = 1024;
  SessionManager manager(options);
  Result<SessionId> id = manager.CreateSession(handle, config.streaming);
  ASSERT_TRUE(id.ok());

  const int64_t known_before = handle->NumKnownClasses();
  std::atomic<bool> stop{false};
  std::thread ingest([&stop, &manager, &id, &config] {
    Rng rng(55);
    while (!stop.load()) {
      Result<std::future<int>> f =
          manager.SubmitWindow(*id, RandomWindow(config, rng));
      if (f.ok()) f.value().wait();
    }
  });

  // New class 4 arrives mid-stream; the exclusive lock must serialize the
  // update against in-flight batches (TSan verifies the exclusion).
  Rng rng(77);
  data::Dataset d_new(
      Tensor::RandNormal(Shape::Matrix(16, config.backbone.input_dim), rng,
                         /*mean=*/8.0f, 0.25f),
      std::vector<int>(16, 4));
  Result<core::TrainReport> report = manager.LearnNewClasses(*id, d_new);
  stop.store(true);
  ingest.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(handle->NumKnownClasses(), known_before + 1);
  EXPECT_GT(handle->model_version(), 0);
}

// ----------------------------------------------- Backpressure + deadlines

TEST(SessionManagerTest, FullQueueRejectsWithResourceExhausted) {
  core::PiloteConfig config = TestConfig();
  ServeOptions options;
  options.queue_capacity = 1;
  SessionManager manager(options);
  Result<SessionId> id =
      manager.CreateSession(MakeHandle(config), config.streaming);
  ASSERT_TRUE(id.ok());

  manager.engine().PauseForTesting();  // returns once the worker is parked
  Rng rng(9);
  Result<std::future<int>> accepted =
      manager.SubmitWindow(*id, RandomWindow(config, rng));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  Result<std::future<int>> rejected =
      manager.SubmitWindow(*id, RandomWindow(config, rng));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  manager.engine().ResumeForTesting();
  EXPECT_GE(accepted.value().get(), 0);
}

TEST(SessionManagerTest, DeadlineMissDegradesToLastVote) {
  core::PiloteConfig config = TestConfig();
  SessionManager manager(ServeOptions{});
  Result<SessionId> id =
      manager.CreateSession(MakeHandle(config), config.streaming);
  ASSERT_TRUE(id.ok());
  Rng rng(13);

  // Before any window completes, a deadline miss yields kNoPrediction.
  manager.engine().PauseForTesting();
  Result<Prediction> first =
      manager.PushWindow(*id, RandomWindow(config, rng), microseconds(2000));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->degraded);
  EXPECT_EQ(first->label, kNoPrediction);

  // Let the queued window (and a fresh one) classify normally.
  manager.engine().ResumeForTesting();
  Result<Prediction> normal =
      manager.PushWindow(*id, RandomWindow(config, rng), microseconds(0));
  ASSERT_TRUE(normal.ok());
  EXPECT_FALSE(normal->degraded);
  EXPECT_GE(normal->label, 0);

  // Now a deadline miss degrades to the last majority-vote label.
  manager.engine().PauseForTesting();
  Result<Prediction> degraded =
      manager.PushWindow(*id, RandomWindow(config, rng), microseconds(2000));
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_GE(degraded->label, 0);
  manager.engine().ResumeForTesting();
}

// ------------------------------------------- Hot-path allocation budgets

// Steady-state ingest must not allocate beyond the returned feature row:
// the window buffer and denoise scratch are preallocated in the assembler,
// so after the first window the only heap traffic per window is the
// [1, kNumFeatures] output Tensor handed to the batcher.
TEST(SessionTest, SteadyStateIngestAllocationsArePinned) {
  core::PiloteConfig config = TestConfig();
  Session session(SessionId{1}, MakeHandle(config), config.streaming);
  Rng rng(7);
  const int window_length = config.streaming.window_length;
  auto make_sample = [&] {
    return Tensor::RandNormal(Shape::Vector(har::kNumChannels), rng);
  };

  // Warm-up window: allocates the assembler buffers (high-water mark).
  std::optional<Tensor> features;
  for (int i = 0; i < window_length; ++i) {
    features = session.AppendSample(make_sample());
  }
  ASSERT_TRUE(features.has_value());

  // Pre-generate the samples so the measured region is ingest only.
  std::vector<Tensor> samples;
  samples.reserve(static_cast<size_t>(window_length));
  for (int i = 0; i < window_length; ++i) samples.push_back(make_sample());

  alloc::ScopedTracking tracking;
  alloc::AllocationScope scope;
  features.reset();
  for (const Tensor& sample : samples) {
    std::optional<Tensor> out = session.AppendSample(sample);
    if (out.has_value()) features = std::move(out);
  }
  ASSERT_TRUE(features.has_value());
  ASSERT_EQ(features->cols(), har::kNumFeatures);
  // One window = one feature-row Tensor (data + dims) plus slack for the
  // optional plumbing; anything above this means per-sample churn is back.
  EXPECT_LE(scope.count(), 8) << "steady-state ingest allocations regressed";
}

// The flush side is pinned through the serve/flush_allocs counter, which
// the worker thread ticks per batch when tracking is enabled. The batched
// predict replays the compiled inference plan on a preallocated arena
// (src/exec/), so after warm-up the only heap traffic per flush is the
// per-call labels vector — the budget is ≤2 allocations per window.
TEST(SessionManagerTest, SteadyStateFlushAllocationsAreBounded) {
  core::PiloteConfig config = TestConfig();
  SessionManager manager(ServeOptions{});
  Result<SessionId> id =
      manager.CreateSession(MakeHandle(config), config.streaming);
  ASSERT_TRUE(id.ok());
  Rng rng(21);
  auto classify_one = [&] {
    Result<std::future<int>> f =
        manager.SubmitWindow(*id, RandomWindow(config, rng));
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    EXPECT_GE(f.value().get(), 0);
  };

  // Warm-up: drive the flush scratch to its high-water mark.
  for (int i = 0; i < 4; ++i) classify_one();

  obs::Counter& flush_allocs =
      obs::MetricsRegistry::Global().GetCounter("serve/flush_allocs");
  alloc::ScopedTracking tracking;
  const int64_t before = flush_allocs.value();
  constexpr int kWindows = 16;
  for (int i = 0; i < kWindows; ++i) classify_one();
  // The worker records the counter after completing a batch's futures; one
  // sentinel window makes the first kWindows flushes' metrics visible (the
  // sentinel's own allocations may or may not be included — the bound has
  // headroom for one extra flush either way).
  classify_one();
  const int64_t delta = flush_allocs.value() - before;
  const double per_window =
      static_cast<double>(delta) / static_cast<double>(kWindows);
  EXPECT_LE(per_window, 2.0)
      << "steady-state flush allocations regressed: " << per_window
      << " allocs/window (the compiled-plan replay budget is the per-call "
         "labels vector only)";
}

}  // namespace
}  // namespace serve
}  // namespace pilote
