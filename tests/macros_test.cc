#include <gtest/gtest.h>

#include "common/macros.h"

namespace pilote {
namespace {

int g_predicate_calls = 0;

bool CountingPredicate() {
  ++g_predicate_calls;
  return true;
}

// ------------------------------------------------------------ PILOTE_CHECK

TEST(MacrosCheckTest, ConditionEvaluatedExactlyOnce) {
  g_predicate_calls = 0;
  PILOTE_CHECK(CountingPredicate());
  EXPECT_EQ(g_predicate_calls, 1);
}

TEST(MacrosCheckTest, CheckOpEvaluatesOperandsOnce) {
  int lhs_evals = 0;
  int rhs_evals = 0;
  auto lhs = [&] {
    ++lhs_evals;
    return 2;
  };
  auto rhs = [&] {
    ++rhs_evals;
    return 5;
  };
  PILOTE_CHECK_LT(lhs(), rhs());
  EXPECT_EQ(lhs_evals, 1);
  EXPECT_EQ(rhs_evals, 1);
}

TEST(MacrosCheckDeathTest, FailureReportsFileAndCondition) {
  EXPECT_DEATH(PILOTE_CHECK(false) << "extra context 42",
               "CHECK failed: false .*extra context 42");
}

TEST(MacrosCheckDeathTest, CheckOpFailureShowsValues) {
  const int small = 1;
  const int big = 9;
  EXPECT_DEATH(PILOTE_CHECK_GT(small, big), "\\(1 vs 9\\)");
}

// ----------------------------------------------------------- PILOTE_DCHECK
//
// The release (NDEBUG) expansion parks the condition inside an unevaluated
// sizeof operand: side effects must provably never run, while the
// expression is still parsed, type-checked, and its names count as used.
// These tests compile into both build modes and assert the mode-appropriate
// behavior, so a regression in either expansion fails ctest rather than
// silently diverging between Release and Debug.

TEST(MacrosDcheckTest, SideEffectPolicyMatchesBuildMode) {
  g_predicate_calls = 0;
  PILOTE_DCHECK(CountingPredicate());
#ifdef NDEBUG
  EXPECT_EQ(g_predicate_calls, 0)
      << "release-mode DCHECK must never evaluate its condition";
#else
  EXPECT_EQ(g_predicate_calls, 1)
      << "debug-mode DCHECK must evaluate its condition";
#endif
}

TEST(MacrosDcheckTest, MutationInConditionNeverLeaksInRelease) {
  int counter = 0;
  PILOTE_DCHECK(++counter > 0);
#ifdef NDEBUG
  EXPECT_EQ(counter, 0);
#else
  EXPECT_EQ(counter, 1);
#endif
}

TEST(MacrosDcheckTest, ConditionNamesStayUsedInAllModes) {
  // `limit` is referenced only by the DCHECK. Under -Wunused-but-set /
  // -Wunused-variable (and -Werror in CI) this test only compiles if the
  // release expansion still marks the name as used.
  const int limit = 3;
  PILOTE_DCHECK(limit > 0);
  SUCCEED();
}

TEST(MacrosDcheckTest, UsableInExpressionStatementPositions) {
  // Must parse as a single statement in unbraced if/else.
  if (true)
    PILOTE_DCHECK(true);
  else
    PILOTE_DCHECK(false);
  SUCCEED();
}

#ifndef NDEBUG
TEST(MacrosDcheckDeathTest, FailsInDebugBuilds) {
  EXPECT_DEATH(PILOTE_DCHECK(1 == 2), "CHECK failed");
}
#else
TEST(MacrosDcheckTest, FalseConditionIsIgnoredInRelease) {
  PILOTE_DCHECK(1 == 2);
  SUCCEED();
}
#endif

}  // namespace
}  // namespace pilote
