// Scenario-engine tests: spec validation, deterministic reporting, the
// catalog contract, and the six named regression scenarios (suite
// ScenarioMatrix, registered one-per-name with ctest label "scenario").
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/catalog.h"
#include "scenario/scenario.h"

namespace pilote {
namespace scenario {
namespace {

using har::Activity;

// A deliberately small scenario for engine-level tests: two base classes,
// one arrival, a short pretrain. Runs in ~1 s.
ScenarioSpec TinySpec() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.seed = 5;
  spec.strategy = "pilote";
  spec.config = core::PiloteConfig::Small();
  spec.config.pretrain.max_epochs = 4;
  spec.config.pretrain.batches_per_epoch = 24;
  spec.config.incremental.max_epochs = 6;
  spec.config.incremental.batches_per_epoch = 8;
  spec.config.exemplars_per_class = 16;
  spec.config.seed = 5;
  spec.base_activities = {Activity::kStill, Activity::kWalk};
  spec.base_samples_per_class = 24;
  spec.eval_samples_per_class = 10;
  spec.events = {ClassArrival({Activity::kRun}, 16)};
  return spec;
}

TEST(ScenarioEngineTest, RejectsSpecWithoutBaseClasses) {
  ScenarioSpec spec = TinySpec();
  spec.base_activities.clear();
  Result<ScenarioReport> report = RunScenario(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioEngineTest, RejectsSecondArrivalOfTheSameClass) {
  ScenarioSpec spec = TinySpec();
  spec.events.push_back(ClassArrival({Activity::kRun}, 16));
  Result<ScenarioReport> report = RunScenario(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("arrives twice"),
            std::string::npos);
}

TEST(ScenarioEngineTest, RejectsArrivalOfABaseClass) {
  ScenarioSpec spec = TinySpec();
  spec.events = {ClassArrival({Activity::kWalk}, 16)};
  Result<ScenarioReport> report = RunScenario(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioEngineTest, RejectsRevisitBeforeIntroduction) {
  ScenarioSpec spec = TinySpec();
  spec.events = {Revisit({Activity::kRun}, 16),
                 ClassArrival({Activity::kRun}, 16)};
  Result<ScenarioReport> report = RunScenario(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("before it is introduced"),
            std::string::npos);
}

TEST(ScenarioEngineTest, RejectsOutOfRangeLabelNoise) {
  ScenarioSpec spec = TinySpec();
  spec.events.insert(spec.events.begin(), LabelNoise(1.0));
  Result<ScenarioReport> report = RunScenario(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// Satellite 2: the determinism golden test. The same spec must serialize
// to byte-identical JSON on every run — any wall-clock, pointer, or
// global-state leak into the report shows up here.
TEST(ScenarioEngineTest, SameSpecAndSeedGiveByteIdenticalJson) {
  const ScenarioSpec spec = TinySpec();
  Result<ScenarioReport> first = RunScenario(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<ScenarioReport> second = RunScenario(spec);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->ToJson(), second->ToJson());
}

TEST(ScenarioEngineTest, DifferentSeedsChangeTheReport) {
  ScenarioSpec spec = TinySpec();
  Result<ScenarioReport> first = RunScenario(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  spec.seed = 6;
  spec.config.seed = 6;
  Result<ScenarioReport> second = RunScenario(spec);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(first->ToJson(), second->ToJson());
}

TEST(ScenarioReportTest, ToJsonIsStableAndOrdered) {
  ScenarioReport report;
  report.name = "demo";
  report.seed = 9;
  report.strategy = "pilote";
  report.chance_accuracy = 0.25;
  report.task_classes = {{0, 3}, {4}};
  report.accuracy_matrix = {{0.875, 0.0}, {0.75, 0.5}};
  report.metrics.average_incremental_accuracy = 0.75;
  report.metrics.final_average_accuracy = 0.625;
  report.metrics.forgetting = 0.125;
  report.metrics.backward_transfer = -0.125;
  report.metrics.forward_transfer = -0.25;
  report.metrics.has_forward_transfer = true;
  report.extras = {{"checkpoint0_seen_acc", 0.8125}};
  EXPECT_EQ(report.ToJson(),
            "{\n"
            "  \"scenario\": \"demo\",\n"
            "  \"seed\": 9,\n"
            "  \"strategy\": \"pilote\",\n"
            "  \"chance_accuracy\": 0.25,\n"
            "  \"num_tasks\": 2,\n"
            "  \"task_classes\": [[0, 3], [4]],\n"
            "  \"accuracy_matrix\": [\n"
            "    [0.875, 0],\n"
            "    [0.75, 0.5]\n"
            "  ],\n"
            "  \"metrics\": {\n"
            "    \"average_incremental_accuracy\": 0.75,\n"
            "    \"final_average_accuracy\": 0.625,\n"
            "    \"forgetting\": 0.125,\n"
            "    \"backward_transfer\": -0.125,\n"
            "    \"forward_transfer\": -0.25,\n"
            "    \"has_forward_transfer\": true\n"
            "  },\n"
            "  \"extras\": {\n"
            "    \"checkpoint0_seen_acc\": 0.8125\n"
            "  }\n"
            "}\n");
}

TEST(ScenarioCatalogTest, SixUniquelyNamedScenariosWithRealGates) {
  const std::vector<ScenarioSpec> all = AllScenarios();
  ASSERT_EQ(all.size(), 6u);
  std::vector<std::string> names;
  for (const ScenarioSpec& spec : all) {
    names.push_back(spec.name);
    EXPECT_FALSE(spec.base_activities.empty()) << spec.name;
    EXPECT_FALSE(spec.events.empty()) << spec.name;
    // Every catalog entry must gate on something real, not the vacuous
    // defaults — otherwise the ctest asserts nothing.
    EXPECT_GT(spec.thresholds.min_final_average_accuracy, 0.0) << spec.name;
    EXPECT_LT(spec.thresholds.max_forgetting, 1.0) << spec.name;
  }
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::unique(names.begin(), names.end()) == names.end());
}

TEST(ScenarioCatalogTest, FindScenarioListsKnownNamesOnMiss) {
  Result<ScenarioSpec> missing = FindScenario("no_such_scenario");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("class_arrival"),
            std::string::npos);
  Result<ScenarioSpec> found = FindScenario("user_shift");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->name, "user_shift");
}

// The sanitizer smoke: one tiny scenario end-to-end, structural asserts
// only (thresholds are a Release-build concern; under ASan/UBSan the
// point is the memory/UB coverage of the full engine path).
TEST(ScenarioSmoke, TinyScenarioRunsEndToEnd) {
  ScenarioSpec spec = TinySpec();
  spec.events = {ClassArrival({Activity::kRun}, 16), Checkpoint(),
                 Revisit({Activity::kStill}, 12),
                 UserShift(3, 0.5, 8, 0.5)};
  Result<ScenarioReport> report = RunScenario(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->accuracy_matrix.size(), 2u);
  ASSERT_EQ(report->accuracy_matrix[0].size(), 2u);
  EXPECT_EQ(report->task_classes.size(), 2u);
  EXPECT_EQ(report->extras.size(), 4u);  // checkpoint + revisit + 2 user
  EXPECT_NE(report->ToJson().find("\"scenario\": \"tiny\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The named regression matrix. Each test is registered as its own labeled
// ctest (scenario_<name>, label "scenario"); keep one scenario per test.
// ---------------------------------------------------------------------------

ScenarioReport MustRun(const ScenarioSpec& spec) {
  Result<ScenarioReport> report = RunScenario(spec);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? std::move(report).value() : ScenarioReport{};
}

ScenarioSpec MustFind(const std::string& name) {
  Result<ScenarioSpec> spec = FindScenario(name);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.ok() ? std::move(spec).value() : ScenarioSpec{};
}

double ExtraOrDie(const ScenarioReport& report, const std::string& key) {
  for (const auto& [name, value] : report.extras) {
    if (name == key) return value;
  }
  ADD_FAILURE() << "missing extra \"" << key << "\" in " << report.ToJson();
  return 0.0;
}

TEST(ScenarioMatrix, ClassArrival) {
  const ScenarioSpec spec = MustFind("class_arrival");
  const ScenarioReport report = MustRun(spec);
  SCOPED_TRACE(report.ToJson());
  EXPECT_TRUE(CheckThresholds(spec, report).ok())
      << CheckThresholds(spec, report).ToString();
  // Sanity beyond the gates: the learner actually picks up each task when
  // it arrives (diagonal well above chance).
  for (size_t t = 0; t < report.accuracy_matrix.size(); ++t) {
    EXPECT_GT(report.accuracy_matrix[t][t], 2.0 * report.chance_accuracy);
  }
}

TEST(ScenarioMatrix, RecalibrationDrift) {
  const ScenarioSpec spec = MustFind("recalibration_drift");
  const ScenarioReport report = MustRun(spec);
  SCOPED_TRACE(report.ToJson());
  EXPECT_TRUE(CheckThresholds(spec, report).ok())
      << CheckThresholds(spec, report).ToString();
}

TEST(ScenarioMatrix, LabelNoise) {
  const ScenarioSpec spec = MustFind("label_noise");
  const ScenarioReport report = MustRun(spec);
  SCOPED_TRACE(report.ToJson());
  EXPECT_TRUE(CheckThresholds(spec, report).ok())
      << CheckThresholds(spec, report).ToString();
}

TEST(ScenarioMatrix, ClassRevisit) {
  const ScenarioSpec spec = MustFind("class_revisit");
  const ScenarioReport report = MustRun(spec);
  SCOPED_TRACE(report.ToJson());
  EXPECT_TRUE(CheckThresholds(spec, report).ok())
      << CheckThresholds(spec, report).ToString();
  // The refreshed class must still be recognized after its exemplars are
  // replaced by the re-recorded data.
  EXPECT_GT(ExtraOrDie(report, "revisit0_old_acc"),
            2.0 * report.chance_accuracy);
}

TEST(ScenarioMatrix, UserShift) {
  const ScenarioSpec spec = MustFind("user_shift");
  const ScenarioReport report = MustRun(spec);
  SCOPED_TRACE(report.ToJson());
  EXPECT_TRUE(CheckThresholds(spec, report).ok())
      << CheckThresholds(spec, report).ToString();
  // On-device prototype adaptation must not hurt — and is expected to
  // help — on the user's drifted distribution.
  const double before = ExtraOrDie(report, "user7_acc_before_adapt");
  const double after = ExtraOrDie(report, "user7_acc_after_adapt");
  EXPECT_GE(after, before - 0.02);
  EXPECT_GT(after, 2.0 * report.chance_accuracy);
}

TEST(ScenarioMatrix, LongHorizon) {
  const ScenarioSpec spec = MustFind("long_horizon");
  const ScenarioReport report = MustRun(spec);
  SCOPED_TRACE(report.ToJson());
  EXPECT_TRUE(CheckThresholds(spec, report).ok())
      << CheckThresholds(spec, report).ToString();
  // Three mid-stream checkpoints recorded, none collapsed.
  for (int k = 0; k < 3; ++k) {
    EXPECT_GT(ExtraOrDie(report,
                         "checkpoint" + std::to_string(k) + "_seen_acc"),
              2.0 * report.chance_accuracy);
  }
}

}  // namespace
}  // namespace scenario
}  // namespace pilote
