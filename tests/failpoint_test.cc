// Unit tests of the failpoint registry itself: trigger semantics, the
// arming grammar, disarm/reset behavior and the disabled fast path. The
// end-to-end fault drills live in chaos_test.cc.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace pilote {
namespace fail {
namespace {

// PILOTE_FAILPOINT registers through a function-local static, so the name
// must be a literal at the expansion site — a pass-through macro keeps each
// test's callsites honest while staying readable.
#define Hit(name) PILOTE_FAILPOINT(name)

bool Registered(const std::string& name) {
  for (const std::string& known : FailpointRegistry::Global().Names()) {
    if (known == name) return true;
  }
  return false;
}

TEST(FailpointTest, DisabledSubsystemIsAlwaysOkAndRegistersNothing) {
  ASSERT_FALSE(Enabled());
  EXPECT_TRUE(Hit("test/disabled").ok());
  EXPECT_FALSE(Registered("test/disabled"));
}

TEST(FailpointTest, EnabledButUnarmedIsOkAndRegisters) {
  ScopedFailpoints scope;
  EXPECT_TRUE(Hit("test/unarmed").ok());
  EXPECT_TRUE(Registered("test/unarmed"));
}

TEST(FailpointTest, OnceFiresExactlyOnce) {
  ScopedFailpoints scope;
  ASSERT_TRUE(
      FailpointRegistry::Global().Arm("test/once", FailpointSpec::Once()).ok());
  Status first = Hit("test/once");
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_NE(first.message().find("test/once"), std::string::npos);
  EXPECT_TRUE(Hit("test/once").ok());
  EXPECT_TRUE(Hit("test/once").ok());
}

TEST(FailpointTest, AlwaysFiresEveryTimeUntilDisarmed) {
  ScopedFailpoints scope;
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Arm("test/always",
                       FailpointSpec::Always(StatusCode::kUnavailable))
                  .ok());
  EXPECT_EQ(Hit("test/always").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Hit("test/always").code(), StatusCode::kUnavailable);
  FailpointRegistry::Global().Disarm("test/always");
  EXPECT_TRUE(Hit("test/always").ok());
}

TEST(FailpointTest, EveryNthFiresOnMultiplesOfN) {
  ScopedFailpoints scope;
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Arm("test/nth", FailpointSpec::EveryNth(3))
                  .ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!Hit("test/nth").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST(FailpointTest, ProbabilityScheduleIsDeterministicInSeed) {
  ScopedFailpoints scope;
  auto schedule = [](uint64_t seed) {
    EXPECT_TRUE(FailpointRegistry::Global()
                    .Arm("test/prob", FailpointSpec::WithProbability(0.5, seed))
                    .ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!Hit("test/prob").ok());
    return fired;
  };
  std::vector<bool> a = schedule(123);
  std::vector<bool> b = schedule(123);
  std::vector<bool> c = schedule(456);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 false-failure odds
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST(FailpointTest, RearmingResetsOnceExhaustion) {
  ScopedFailpoints scope;
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Arm("test/rearm", FailpointSpec::Once())
                  .ok());
  EXPECT_FALSE(Hit("test/rearm").ok());
  EXPECT_TRUE(Hit("test/rearm").ok());
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Arm("test/rearm", FailpointSpec::Once())
                  .ok());
  EXPECT_FALSE(Hit("test/rearm").ok());
}

TEST(FailpointTest, ArmRejectsInvalidSpecs) {
  ScopedFailpoints scope;
  FailpointSpec ok_code = FailpointSpec::Once();
  ok_code.code = StatusCode::kOk;
  EXPECT_EQ(FailpointRegistry::Global().Arm("test/bad", ok_code).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FailpointRegistry::Global()
                .Arm("test/bad", FailpointSpec::EveryNth(0))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FailpointRegistry::Global()
                .Arm("test/bad", FailpointSpec::WithProbability(1.5, 1))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(FailpointTest, ArmFromStringParsesTheEnvGrammar) {
  ScopedFailpoints scope;
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromString("test/cfg_a=once:data_loss;"
                                 "test/cfg_b=nth:2:unavailable;"
                                 "test/cfg_c=prob:1.0:7")
                  .ok());
  EXPECT_EQ(Hit("test/cfg_a").code(), StatusCode::kDataLoss);
  EXPECT_TRUE(Hit("test/cfg_b").ok());
  EXPECT_EQ(Hit("test/cfg_b").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Hit("test/cfg_c").code(), StatusCode::kIoError);
}

TEST(FailpointTest, ArmFromStringAcceptsEnableOnlySentinel) {
  ScopedFailpoints scope;
  EXPECT_TRUE(FailpointRegistry::Global().ArmFromString("1").ok());
}

TEST(FailpointTest, ArmFromStringRejectsMalformedEntries) {
  ScopedFailpoints scope;
  for (const char* bad :
       {"missing_equals", "=once", "test/x=explode", "test/x=nth",
        "test/x=nth:notanumber", "test/x=prob:0.5", "test/x=once:bad_code",
        "test/x=once:io_error:extra"}) {
    EXPECT_EQ(FailpointRegistry::Global().ArmFromString(bad).code(),
              StatusCode::kInvalidArgument)
        << bad;
  }
}

TEST(FailpointTest, StatsCountHitsAndFires) {
  ScopedFailpoints scope;
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Arm("test/stats", FailpointSpec::EveryNth(2))
                  .ok());
  for (int i = 0; i < 4; ++i) {
    Status status = Hit("test/stats");
    (void)status.ok();
  }
  bool found = false;
  for (const FailpointStats& stats : FailpointRegistry::Global().Stats()) {
    if (stats.name != "test/stats") continue;
    found = true;
    EXPECT_GE(stats.hits, 4);
    EXPECT_EQ(stats.fires, 2);
    EXPECT_TRUE(stats.armed);
  }
  EXPECT_TRUE(found);
  const std::string json = FailpointRegistry::Global().StatsJson();
  EXPECT_NE(json.find("\"test/stats\":{\"armed\":true"), std::string::npos);
}

TEST(FailpointTest, ScopedFailpointsDisarmsOnExit) {
  {
    ScopedFailpoints scope;
    ASSERT_TRUE(FailpointRegistry::Global()
                    .Arm("test/scoped", FailpointSpec::Always())
                    .ok());
    EXPECT_FALSE(Hit("test/scoped").ok());
  }
  ASSERT_FALSE(Enabled());
  EXPECT_TRUE(Hit("test/scoped").ok());
  {
    ScopedFailpoints scope;
    EXPECT_TRUE(Hit("test/scoped").ok()) << "previous arm must not leak";
  }
}

}  // namespace
}  // namespace fail
}  // namespace pilote
