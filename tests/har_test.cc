#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "har/activity.h"
#include "har/feature_extractor.h"
#include "har/har_dataset.h"
#include "har/sensor_layout.h"
#include "har/sensor_simulator.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace har {
namespace {

// Mean of one channel over a window.
double ChannelMean(const Tensor& window, int channel) {
  double sum = 0.0;
  for (int64_t t = 0; t < window.rows(); ++t) sum += window(t, channel);
  return sum / static_cast<double>(window.rows());
}

double ChannelVar(const Tensor& window, int channel) {
  const double mu = ChannelMean(window, channel);
  double acc = 0.0;
  for (int64_t t = 0; t < window.rows(); ++t) {
    const double d = window(t, channel) - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(window.rows());
}

// Mean over several windows of a per-window statistic.
template <typename Fn>
double MeanOverWindows(SensorSimulator& sim, Activity activity, int count,
                       Fn fn) {
  double total = 0.0;
  for (int i = 0; i < count; ++i) total += fn(sim.GenerateWindow(activity));
  return total / count;
}

// ---------------------------------------------------------------- Activity

TEST(ActivityTest, NamesAndLabelsRoundTrip) {
  for (Activity activity : AllActivities()) {
    EXPECT_EQ(ActivityFromLabel(ActivityLabel(activity)), activity);
  }
  EXPECT_EQ(ActivityName(Activity::kRun), "Run");
  EXPECT_EQ(ActivityName(Activity::kEscooter), "E-scooter");
  EXPECT_EQ(static_cast<int>(AllActivities().size()), kNumActivities);
}

TEST(ActivityDeathTest, BadLabelIsFatal) {
  EXPECT_DEATH(ActivityFromLabel(9), "label");
}

// ---------------------------------------------------------------- Simulator

TEST(SensorSimulatorTest, WindowShape) {
  SensorSimulator sim(1);
  Tensor window = sim.GenerateWindow(Activity::kWalk);
  EXPECT_EQ(window.rows(), kWindowLength);
  EXPECT_EQ(window.cols(), kNumChannels);
}

TEST(SensorSimulatorTest, DeterministicForSeed) {
  SensorSimulator a(42);
  SensorSimulator b(42);
  Tensor wa = a.GenerateWindow(Activity::kRun);
  Tensor wb = b.GenerateWindow(Activity::kRun);
  EXPECT_TRUE(AllClose(wa, wb, 0.0f, 0.0f));
}

TEST(SensorSimulatorTest, EpisodesDifferWithinOneStream) {
  SensorSimulator sim(7);
  Tensor w1 = sim.GenerateWindow(Activity::kWalk);
  Tensor w2 = sim.GenerateWindow(Activity::kWalk);
  EXPECT_FALSE(AllClose(w1, w2));
}

TEST(SensorSimulatorTest, GravityMagnitudeIsPhysical) {
  SensorSimulator sim(3);
  Tensor window = sim.GenerateWindow(Activity::kStill);
  for (int64_t t = 0; t < window.rows(); ++t) {
    const double gx = window(t, kGravity + 0);
    const double gy = window(t, kGravity + 1);
    const double gz = window(t, kGravity + 2);
    EXPECT_NEAR(std::sqrt(gx * gx + gy * gy + gz * gz), 9.81, 0.25);
  }
}

TEST(SensorSimulatorTest, RunIsMoreDynamicThanStill) {
  SensorSimulator sim(4);
  const double run_var = MeanOverWindows(
      sim, Activity::kRun, 20,
      [](const Tensor& w) { return ChannelVar(w, kLinearAcceleration + 2); });
  const double still_var = MeanOverWindows(
      sim, Activity::kStill, 20,
      [](const Tensor& w) { return ChannelVar(w, kLinearAcceleration + 2); });
  EXPECT_GT(run_var, 10.0 * still_var);
}

TEST(SensorSimulatorTest, SpeedOrderingDriveFastestStillSlowest) {
  SensorSimulator sim(5);
  auto mean_speed = [&](Activity a) {
    return MeanOverWindows(sim, a, 20, [](const Tensor& w) {
      return ChannelMean(w, kGpsSpeed);
    });
  };
  const double drive = mean_speed(Activity::kDrive);
  const double scooter = mean_speed(Activity::kEscooter);
  const double run = mean_speed(Activity::kRun);
  const double walk = mean_speed(Activity::kWalk);
  const double still = mean_speed(Activity::kStill);
  EXPECT_GT(drive, scooter);
  EXPECT_GT(scooter, run);
  EXPECT_GT(run, walk);
  EXPECT_GT(walk, still);
}

TEST(SensorSimulatorTest, RunAndWalkOverlapMoreThanRunAndDrive) {
  // The Run/Walk gait ranges are designed to overlap: the gap between
  // their mean dynamics should be far smaller than Run vs Drive's speed
  // gap, relative to spread. A cheap proxy: vertical linear-acc variance.
  SensorSimulator sim(6);
  auto dyn = [&](Activity a) {
    return MeanOverWindows(sim, a, 30, [](const Tensor& w) {
      return ChannelVar(w, kLinearAcceleration + 2);
    });
  };
  const double run = dyn(Activity::kRun);
  const double walk = dyn(Activity::kWalk);
  const double drive = dyn(Activity::kDrive);
  EXPECT_LT(std::abs(run - walk), std::abs(run - drive) * 1.5);
  EXPECT_GT(run, walk);  // but Run is still the more dynamic one
}

TEST(SensorSimulatorTest, DriveDistortsMagnetometer) {
  SensorSimulator sim(8);
  auto mag_x = [&](Activity a) {
    return MeanOverWindows(sim, a, 30, [](const Tensor& w) {
      return ChannelMean(w, kMagnetometer);
    });
  };
  // The car-body offset biases the x-field upward on average.
  EXPECT_GT(mag_x(Activity::kDrive), mag_x(Activity::kStill) + 5.0);
}

// ---------------------------------------------------------------- Drift

TEST(SensorDriftTest, IdentityByDefault) {
  EXPECT_TRUE(SensorDrift{}.IsIdentity());
  SensorDrift drift;
  drift.accel_offset[1] = 0.5;
  EXPECT_FALSE(drift.IsIdentity());
  SensorDrift scaled;
  scaled.gait_amp_scale = 1.2;
  EXPECT_FALSE(scaled.IsIdentity());
}

TEST(SensorDriftTest, ZeroMagnitudeDriftIsBitIdentical) {
  // Installing the identity drift must not perturb the stream at all:
  // same seed, same activities, byte-for-byte identical windows.
  SensorSimulator plain(77);
  SensorSimulator drifted(77);
  drifted.SetDrift(SensorDrift{});
  for (Activity activity : AllActivities()) {
    Tensor a = plain.GenerateWindow(activity);
    Tensor b = drifted.GenerateWindow(activity);
    ASSERT_EQ(std::memcmp(a.data(), b.data(),
                          sizeof(float) * static_cast<size_t>(a.numel())),
              0)
        << ActivityName(activity);
  }
}

TEST(SensorDriftTest, ClearDriftResumesUndriftedStream) {
  // Drift application consumes no randomness, so clearing it resumes the
  // exact undrifted sequence: window k of a simulator that was drifted
  // for windows 0..k-1 matches window k of a never-drifted twin.
  SensorSimulator plain(78);
  SensorSimulator toggled(78);
  SensorDrift drift;
  drift.accel_offset[0] = 2.0;
  toggled.SetDrift(drift);
  for (int i = 0; i < 3; ++i) {
    (void)plain.GenerateWindow(Activity::kWalk);
    (void)toggled.GenerateWindow(Activity::kWalk);
  }
  toggled.ClearDrift();
  Tensor a = plain.GenerateWindow(Activity::kWalk);
  Tensor b = toggled.GenerateWindow(Activity::kWalk);
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.numel())),
            0);
}

TEST(SensorDriftTest, RecalibrationOffsetShiftsChannelMeans) {
  SensorDrift drift;
  drift.accel_offset[0] = 1.5;
  drift.gyro_offset[2] = -0.3;
  drift.mag_offset[1] = 8.0;
  drift.baro_offset = 5.0;
  // Same seed on both sides: drift consumes no RNG, so every episode is
  // identical and the mean shift equals the offset exactly (up to float
  // rounding of the per-sample addition).
  SensorSimulator plain(79);
  SensorSimulator drifted(79);
  drifted.SetDrift(drift);
  const int kWindows = 20;
  auto means = [&](SensorSimulator& sim, int channel) {
    return MeanOverWindows(sim, Activity::kStill, kWindows,
                           [channel](const Tensor& w) {
                             return ChannelMean(w, channel);
                           });
  };
  EXPECT_NEAR(means(drifted, kAccelerometer + 0) - means(plain, kAccelerometer + 0),
              1.5, 1e-3);
  EXPECT_NEAR(means(drifted, kGyroscope + 2) - means(plain, kGyroscope + 2),
              -0.3, 1e-3);
  EXPECT_NEAR(means(drifted, kMagnetometer + 1) - means(plain, kMagnetometer + 1),
              8.0, 1e-3);
  EXPECT_NEAR(means(drifted, kBarometer) - means(plain, kBarometer), 5.0,
              1e-3);
}

TEST(SensorDriftTest, NoiseFloorScaleRaisesVariance) {
  SensorDrift drift;
  drift.noise_floor_scale = 3.0;
  SensorSimulator plain(80);
  SensorSimulator drifted(80);
  drifted.SetDrift(drift);
  auto var = [&](SensorSimulator& sim) {
    return MeanOverWindows(sim, Activity::kStill, 30, [](const Tensor& w) {
      return ChannelVar(w, kLinearAcceleration + 0);
    });
  };
  // Identical episodes (same seed, no extra RNG draws), 3x the noise
  // sigma: the linear-acceleration variance must rise clearly.
  EXPECT_GT(var(drifted), 2.0 * var(plain));
}

TEST(SensorDriftTest, GaitShiftMovesAmplitudeAndSpeedInAssertedDirection) {
  SensorDrift drift;
  drift.gait_amp_scale = 2.0;
  drift.speed_scale = 1.6;
  SensorSimulator plain(81);
  SensorSimulator drifted(81);
  drifted.SetDrift(drift);
  const int kWindows = 30;
  auto dyn = [&](SensorSimulator& sim) {
    return MeanOverWindows(sim, Activity::kWalk, kWindows,
                           [](const Tensor& w) {
                             return ChannelVar(w, kLinearAcceleration + 2);
                           });
  };
  auto speed = [&](SensorSimulator& sim) {
    return MeanOverWindows(sim, Activity::kWalk, kWindows,
                           [](const Tensor& w) {
                             return ChannelMean(w, kGpsSpeed);
                           });
  };
  EXPECT_GT(dyn(drifted), 1.5 * dyn(plain));
  EXPECT_GT(speed(drifted), 1.2 * speed(plain));
}

TEST(SensorDriftTest, UserProfileIsDeterministicAndScalesWithSeverity) {
  SensorDrift a = SensorDrift::UserProfile(1234, 1.0);
  SensorDrift b = SensorDrift::UserProfile(1234, 1.0);
  EXPECT_EQ(a.gait_freq_scale, b.gait_freq_scale);
  EXPECT_EQ(a.accel_offset[0], b.accel_offset[0]);
  EXPECT_FALSE(a.IsIdentity());
  EXPECT_TRUE(SensorDrift::UserProfile(1234, 0.0).IsIdentity());
  // Different users get different profiles.
  SensorDrift c = SensorDrift::UserProfile(99, 1.0);
  EXPECT_NE(a.gait_freq_scale, c.gait_freq_scale);
  // Severity shrinks the deviation from identity.
  SensorDrift mild = SensorDrift::UserProfile(1234, 0.1);
  EXPECT_LT(std::abs(mild.gait_freq_scale - 1.0),
            std::abs(a.gait_freq_scale - 1.0));
}

// ---------------------------------------------------------------- Features

TEST(FeatureExtractorTest, OutputLengthAndNames) {
  EXPECT_EQ(kNumFeatures, 80);
  EXPECT_EQ(FeatureNames().size(), 80u);
  EXPECT_EQ(FeatureNames()[0], "acc_x_mean");
  EXPECT_EQ(FeatureNames()[1], "acc_x_var");
  EXPECT_EQ(FeatureNames()[44], "acc_x_jerk_mean");
  EXPECT_EQ(FeatureNames().back(), "yaw_jerk_var");
}

TEST(FeatureExtractorTest, ConstantWindowHasZeroVarianceAndJerk) {
  Tensor window(Shape::Matrix(kWindowLength, kNumChannels), 2.5f);
  Tensor features = ExtractFeatures(window);
  for (int c = 0; c < kNumChannels; ++c) {
    EXPECT_FLOAT_EQ(features[2 * c], 2.5f);      // mean
    EXPECT_FLOAT_EQ(features[2 * c + 1], 0.0f);  // var
  }
  for (int64_t f = 44; f < kNumFeatures; ++f) {
    EXPECT_FLOAT_EQ(features[f], 0.0f);  // jerk stats
  }
}

TEST(FeatureExtractorTest, LinearRampHasConstantJerk) {
  // channel value = t => jerk = kSampleRateHz everywhere, jerk var = 0.
  Tensor window(Shape::Matrix(kWindowLength, kNumChannels));
  for (int64_t t = 0; t < kWindowLength; ++t) {
    for (int c = 0; c < kNumChannels; ++c) {
      window(t, c) = static_cast<float>(t);
    }
  }
  Tensor features = ExtractFeatures(window);
  EXPECT_NEAR(features[44], kSampleRateHz, 1e-2f);  // acc_x jerk mean
  EXPECT_NEAR(features[45], 0.0f, 1e-2f);           // acc_x jerk var
}

TEST(FeatureExtractorTest, KnownMeanVariance) {
  Tensor window(Shape::Matrix(kWindowLength, kNumChannels));
  // Alternate 0/2 in channel 0: mean 1, var 1.
  for (int64_t t = 0; t < kWindowLength; ++t) {
    window(t, 0) = (t % 2 == 0) ? 0.0f : 2.0f;
  }
  Tensor features = ExtractFeatures(window);
  EXPECT_NEAR(features[0], 1.0f, 1e-5f);
  EXPECT_NEAR(features[1], 1.0f, 1e-5f);
}

TEST(FeatureExtractorTest, BatchMatchesSingle) {
  SensorSimulator sim(9);
  std::vector<Tensor> windows = {sim.GenerateWindow(Activity::kWalk),
                                 sim.GenerateWindow(Activity::kDrive)};
  Tensor batch = ExtractFeaturesBatch(windows);
  EXPECT_EQ(batch.rows(), 2);
  EXPECT_TRUE(AllClose(RowAt(batch, 0), ExtractFeatures(windows[0])));
  EXPECT_TRUE(AllClose(RowAt(batch, 1), ExtractFeatures(windows[1])));
}

TEST(FeatureExtractorTest, WrongChannelCountIsFatal) {
  Tensor window(Shape::Matrix(kWindowLength, 5));
  EXPECT_DEATH(ExtractFeatures(window), "CHECK failed");
}

// ---------------------------------------------------------------- Generator

TEST(HarDataGeneratorTest, GenerateShapesAndLabels) {
  HarDataGenerator gen(10);
  data::Dataset ds = gen.Generate(Activity::kRun, 12);
  EXPECT_EQ(ds.size(), 12);
  EXPECT_EQ(ds.num_features(), kNumFeatures);
  for (int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.label(i), ActivityLabel(Activity::kRun));
  }
}

TEST(HarDataGeneratorTest, BalancedCoversAllActivities) {
  HarDataGenerator gen(11);
  data::Dataset ds = gen.GenerateBalanced(4);
  EXPECT_EQ(ds.size(), 4 * kNumActivities);
  for (const auto& [label, count] : ds.ClassCounts()) {
    EXPECT_EQ(count, 4) << "label " << label;
  }
}

TEST(HarDataGeneratorTest, SubsetOfActivities) {
  HarDataGenerator gen(12);
  data::Dataset ds =
      gen.GenerateBalanced(3, {Activity::kWalk, Activity::kRun});
  EXPECT_EQ(ds.size(), 6);
  EXPECT_EQ(ds.Classes(),
            (std::vector<int>{ActivityLabel(Activity::kRun),
                              ActivityLabel(Activity::kWalk)}));
}

TEST(HarDataGeneratorTest, FeaturesSeparateEasyClassesOnAverage) {
  // The GPS-speed mean feature separates Drive from Still in expectation
  // (not pointwise: ~35% of episodes have no GPS fix and read ~0).
  HarDataGenerator gen(13);
  data::Dataset drive = gen.Generate(Activity::kDrive, 40);
  data::Dataset still = gen.Generate(Activity::kStill, 40);
  const int64_t f = 2 * kGpsSpeed;
  double drive_mean = 0.0;
  double still_mean = 0.0;
  for (int64_t i = 0; i < 40; ++i) {
    drive_mean += drive.features()(i, f);
    still_mean += still.features()(i, f);
  }
  EXPECT_GT(drive_mean / 40.0, still_mean / 40.0 + 3.0);
}

TEST(HarDataGeneratorTest, GpsDropoutProducesZeroSpeedDriveWindows) {
  // Some Drive windows must read near-zero speed (no GPS fix) — the
  // realistic failure mode that keeps speed from being a perfect
  // discriminator.
  HarDataGenerator gen(14);
  data::Dataset drive = gen.Generate(Activity::kDrive, 60);
  const int64_t f = 2 * kGpsSpeed;
  int dropouts = 0;
  for (int64_t i = 0; i < 60; ++i) {
    if (drive.features()(i, f) < 1.0f) ++dropouts;
  }
  EXPECT_GT(dropouts, 5);
  EXPECT_LT(dropouts, 40);
}

}  // namespace
}  // namespace har
}  // namespace pilote
