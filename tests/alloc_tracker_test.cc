// Tests of the runtime allocation accounting behind PILOTE_ALLOC_STATS:
// gating (zero overhead and zero counts while disabled), scope deltas and
// nesting, and per-thread isolation (each thread owns its counters; the
// multi-thread case doubles as a TSan drill for the interposed operator
// new/delete).
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_tracker.h"

namespace pilote {
namespace alloc {
namespace {

// Heap traffic the optimizer cannot elide: the pointer escapes through a
// volatile sink before being freed.
void TouchHeap(size_t bytes) {
  char* p = new char[bytes];
  static volatile char sink;
  sink = p[0];
  delete[] p;
}

class AllocTrackerTest : public ::testing::Test {
 protected:
  void TearDown() override { SetTrackingEnabled(false); }
};

TEST_F(AllocTrackerTest, DisabledByDefaultAndCountsNothing) {
  ASSERT_FALSE(TrackingEnabled());
  const ThreadStats before = CurrentThreadStats();
  TouchHeap(1024);
  const ThreadStats after = CurrentThreadStats();
  EXPECT_EQ(after.count, before.count);
  EXPECT_EQ(after.bytes, before.bytes);
}

TEST_F(AllocTrackerTest, CountsAllocationsWhileEnabled) {
  ScopedTracking tracking;
  AllocationScope scope;
  TouchHeap(256);
  EXPECT_GE(scope.count(), 1);
  EXPECT_GE(scope.bytes(), 256);
}

TEST_F(AllocTrackerTest, ScopedTrackingRestoresPreviousState) {
  ASSERT_FALSE(TrackingEnabled());
  {
    ScopedTracking outer;
    EXPECT_TRUE(TrackingEnabled());
    {
      ScopedTracking inner;
      EXPECT_TRUE(TrackingEnabled());
    }
    EXPECT_TRUE(TrackingEnabled());
  }
  EXPECT_FALSE(TrackingEnabled());
}

TEST_F(AllocTrackerTest, ScopesNestIndependently) {
  ScopedTracking tracking;
  AllocationScope outer;
  TouchHeap(64);
  const int64_t outer_before_inner = outer.count();
  AllocationScope inner;
  TouchHeap(64);
  TouchHeap(64);
  EXPECT_GE(inner.count(), 2);
  // The outer scope saw everything the inner one saw, plus its own prefix.
  EXPECT_GE(outer.count(), outer_before_inner + inner.count());
}

TEST_F(AllocTrackerTest, DeallocationDoesNotChangeCounts) {
  ScopedTracking tracking;
  char* p = new char[128];
  AllocationScope scope;
  delete[] p;
  EXPECT_EQ(scope.count(), 0);
  EXPECT_EQ(scope.bytes(), 0);
}

TEST_F(AllocTrackerTest, OveralignedAllocationIsCounted) {
  ScopedTracking tracking;
  AllocationScope scope;
  struct alignas(64) Wide {
    char data[64];
  };
  auto w = std::make_unique<Wide>();
  static volatile char sink;
  sink = w->data[0];
  EXPECT_GE(scope.count(), 1);
  EXPECT_GE(scope.bytes(), 64);
}

TEST_F(AllocTrackerTest, CountersArePerThread) {
  ScopedTracking tracking;
  AllocationScope scope;
  std::thread other([] {
    // The gate is global, so the spawned thread is tracked too — but into
    // its own counters, which this test then observes independently.
    AllocationScope thread_scope;
    TouchHeap(512);
    EXPECT_GE(thread_scope.count(), 1);
  });
  other.join();
  // std::thread construction allocates on this thread; the 512-byte body
  // must not be attributed here. Checking bytes rather than count keeps
  // the assertion robust to the thread-handle allocation itself.
  TouchHeap(64);
  EXPECT_GE(scope.count(), 1);
}

TEST_F(AllocTrackerTest, ConcurrentAllocationIsRaceFree) {
  ScopedTracking tracking;
  constexpr int kThreads = 4;
  static constexpr int kAllocsPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      AllocationScope scope;
      for (int i = 0; i < kAllocsPerThread; ++i) TouchHeap(32);
      EXPECT_GE(scope.count(), kAllocsPerThread);
    });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace
}  // namespace alloc
}  // namespace pilote
