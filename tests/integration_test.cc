// End-to-end tests of the full PILOTE pipeline on simulated HAR data:
// cloud pre-training on four activities, edge integration of the held-out
// one, and the paper's qualitative claims (Q1-Q3) in miniature.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/cloud.h"
#include "core/edge_learner.h"
#include "core/edge_profile.h"
#include "data/splits.h"
#include "eval/metrics.h"
#include "har/har_dataset.h"

namespace pilote {
namespace core {
namespace {

using har::Activity;
using har::ActivityLabel;

// Shared fixture: generate data and pre-train once for all tests (the
// cloud phase is the expensive part).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    har::HarDataGenerator generator(1234);
    const std::vector<Activity> old_activities = {
        Activity::kDrive, Activity::kEscooter, Activity::kStill,
        Activity::kWalk};

    state_ = new State;
    state_->config = PiloteConfig::Small();
    state_->config.exemplars_per_class = 40;
    state_->config.seed = 99;

    state_->d_old = generator.GenerateBalanced(80, old_activities);
    state_->d_new = generator.Generate(Activity::kRun, 40);
    state_->test_all = generator.GenerateBalanced(40);

    CloudPretrainer pretrainer(state_->config);
    Result<CloudPretrainResult> result = pretrainer.Run(state_->d_old);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    state_->artifact = std::move(result.value().artifact);
    state_->pretrain_report = result.value().report;
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    PiloteConfig config;
    data::Dataset d_old;
    data::Dataset d_new;
    data::Dataset test_all;
    CloudArtifact artifact;
    TrainReport pretrain_report;
  };
  static State* state_;
};

PipelineTest::State* PipelineTest::state_ = nullptr;

// Most tests expect the incremental update to succeed; unwrap with a
// readable failure instead of repeating the ASSERT boilerplate.
TrainReport MustLearn(EdgeLearner& learner, const data::Dataset& d_new) {
  Result<TrainReport> report = learner.LearnNewClasses(d_new);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.value_or(TrainReport{});
}

TEST_F(PipelineTest, CloudPretrainingConverged) {
  EXPECT_GT(state_->pretrain_report.epochs_completed, 0);
  ASSERT_GE(state_->pretrain_report.val_loss_history.size(), 2u);
  EXPECT_LT(state_->pretrain_report.final_val_loss,
            state_->pretrain_report.val_loss_history.front());
}

TEST_F(PipelineTest, ArtifactHoldsExemplarsForOldClassesOnly) {
  EXPECT_EQ(state_->artifact.support.NumClasses(), 4);
  EXPECT_FALSE(
      state_->artifact.support.HasClass(ActivityLabel(Activity::kRun)));
  for (int label : state_->artifact.support.Classes()) {
    EXPECT_LE(state_->artifact.support.CountForClass(label),
              state_->config.exemplars_per_class);
  }
  EXPECT_GT(state_->artifact.TransferBytes(), 0);
}

TEST_F(PipelineTest, PretrainedLearnerClassifiesOldClassesWell) {
  PretrainedLearner learner(state_->artifact, state_->config);
  data::Dataset old_test = state_->test_all.FilterByClasses(
      state_->artifact.old_classes);
  const double accuracy = learner.Evaluate(old_test);
  EXPECT_GT(accuracy, 0.75) << "pre-trained old-class accuracy";
}

TEST_F(PipelineTest, GdumbRetrainsFromScratchAndBalancesCache) {
  GdumbLearner learner(state_->artifact, state_->config);
  TrainReport report = MustLearn(learner, state_->d_new);
  EXPECT_GT(report.epochs_completed, 0);
  // The cache is balanced: every class holds the same exemplar count.
  int64_t expected = -1;
  for (int label : learner.support().Classes()) {
    const int64_t count = learner.support().CountForClass(label);
    if (expected < 0) expected = count;
    EXPECT_EQ(count, expected) << "class " << label;
  }
  // It must still produce a usable 5-class model.
  EXPECT_GT(learner.Evaluate(state_->test_all), 0.5);
}

TEST_F(PipelineTest, AllLearnersGainTheNewClass) {
  for (const char* strategy : {"pretrained", "retrained", "gdumb", "pilote"}) {
    SCOPED_TRACE(strategy);
    Result<std::unique_ptr<EdgeLearner>> made =
        MakeEdgeLearner(strategy, state_->artifact, state_->config);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    std::unique_ptr<EdgeLearner> learner = std::move(made).value();
    MustLearn(*learner, state_->d_new);
    EXPECT_EQ(learner->known_classes().size(), 5u);
    EXPECT_TRUE(
        learner->support().HasClass(ActivityLabel(Activity::kRun)));
    // The learner must sometimes predict the new class on new-class data.
    data::Dataset run_test =
        state_->test_all.FilterByClass(ActivityLabel(Activity::kRun));
    auto per_class = eval::PerClassAccuracy(
        learner->Predict(run_test.features()), run_test.labels());
    EXPECT_GT(per_class[ActivityLabel(Activity::kRun)], 0.25);
  }
}

TEST_F(PipelineTest, TrainedLearnersBeatThePretrainedBaseline) {
  PretrainedLearner pretrained(state_->artifact, state_->config);
  MustLearn(pretrained, state_->d_new);
  PiloteLearner pilote(state_->artifact, state_->config);
  MustLearn(pilote, state_->d_new);

  const double base = pretrained.Evaluate(state_->test_all);
  const double ours = pilote.Evaluate(state_->test_all);
  // Table 2's ordering: PILOTE > pre-trained on the 5-class test set.
  EXPECT_GT(ours, base - 0.02) << "pilote=" << ours << " base=" << base;
}

TEST_F(PipelineTest, DistillationImprovesOldClassRetention) {
  // The method's core invariant (Def. 2): with the distillation term
  // (alpha = 0.5) the updated model retains more old-class accuracy than
  // the identical training run without it (alpha = 0).
  PiloteLearner with_distill(state_->artifact, state_->config);
  MustLearn(with_distill, state_->d_new);

  PiloteConfig no_distill_config = state_->config;
  no_distill_config.alpha = 0.0f;
  PiloteLearner without_distill(state_->artifact, no_distill_config);
  MustLearn(without_distill, state_->d_new);

  data::Dataset old_test = state_->test_all.FilterByClasses(
      state_->artifact.old_classes);
  const double old_acc_with = with_distill.Evaluate(old_test);
  const double old_acc_without = without_distill.Evaluate(old_test);
  EXPECT_GT(old_acc_with, old_acc_without - 0.01)
      << "with=" << old_acc_with << " without=" << old_acc_without;
}

TEST_F(PipelineTest, LearnersAreDeterministicGivenConfigSeed) {
  PiloteLearner a(state_->artifact, state_->config);
  MustLearn(a, state_->d_new);
  PiloteLearner b(state_->artifact, state_->config);
  MustLearn(b, state_->d_new);
  EXPECT_DOUBLE_EQ(a.Evaluate(state_->test_all),
                   b.Evaluate(state_->test_all));
}

TEST_F(PipelineTest, LearningAKnownClassIsRejectedWithoutStateChange) {
  PiloteLearner learner(state_->artifact, state_->config);
  const size_t known_before = learner.known_classes().size();
  Result<TrainReport> result = learner.LearnNewClasses(state_->d_old);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("already known"),
            std::string::npos);
  EXPECT_EQ(learner.known_classes().size(), known_before);
}

TEST_F(PipelineTest, LearningFromAnEmptyDatasetIsRejected) {
  PiloteLearner learner(state_->artifact, state_->config);
  Result<TrainReport> result = learner.LearnNewClasses(data::Dataset());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineTest, EdgeProfileReportsBudget) {
  PiloteLearner learner(state_->artifact, state_->config);
  TrainReport report = MustLearn(learner, state_->d_new);
  EdgeProfileReport profile =
      ProfileEdge(learner, state_->test_all.features(), &report);
  EXPECT_GT(profile.model_parameters, 0);
  EXPECT_GT(profile.model_bytes, profile.model_parameters * 4 - 1);
  EXPECT_EQ(profile.support_exemplars, learner.support().TotalExemplars());
  EXPECT_GT(profile.support_bytes_fp32, profile.support_bytes_int8);
  EXPECT_GT(profile.inference_ms_per_window, 0.0);
  // Per-window latency percentiles come from the obs registry histogram
  // and must be ordered and bracket the mean's neighborhood.
  EXPECT_GT(profile.inference_p50_ms, 0.0);
  EXPECT_LE(profile.inference_p50_ms, profile.inference_p95_ms);
  EXPECT_LE(profile.inference_p95_ms, profile.inference_p99_ms);
  EXPECT_GT(profile.train_epoch_seconds, 0.0);
  // Plan-vs-eager columns: the learner serves through a compiled plan, so
  // both sides are measured, and the warmed-up plan replay never touches
  // the allocator (the zero-alloc executor contract, here end to end).
  EXPECT_TRUE(profile.exec_plan_live);
  EXPECT_GT(profile.exec_plan_ms_per_window, 0.0);
  EXPECT_GT(profile.exec_eager_ms_per_window, 0.0);
  EXPECT_EQ(profile.exec_plan_allocs_per_window, 0.0);
  EXPECT_NE(profile.ToString().find("exec: plan"), std::string::npos);
  EXPECT_FALSE(profile.ToString().empty());
}

TEST_F(PipelineTest, EdgeProfileWithoutTrainingReportsNa) {
  PretrainedLearner learner(state_->artifact, state_->config);
  EdgeProfileReport profile =
      ProfileEdge(learner, state_->test_all.features(), /*last_report=*/nullptr);
  EXPECT_TRUE(std::isnan(profile.train_epoch_seconds));
  EXPECT_NE(profile.ToString().find("training: n/a"), std::string::npos);
  EXPECT_GT(profile.inference_ms_per_window, 0.0);
}

TEST_F(PipelineTest, QuantizedSupportSetStillClassifies) {
  // Storing the cache in int8 must not destroy accuracy (Q2's compressed
  // storage claim).
  PiloteLearner learner(state_->artifact, state_->config);
  MustLearn(learner, state_->d_new);
  const double before = learner.Evaluate(state_->test_all);

  Status applied = learner.ApplySupportSetUpdate(
      learner.support().QuantizeRoundTrip(serialize::QuantMode::kInt8));
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  const double after = learner.Evaluate(state_->test_all);
  EXPECT_GT(after, before - 0.1);
}

TEST_F(PipelineTest, SequentialIncrementsKeepAllClasses) {
  // Two back-to-back increments (the continual-stream scenario): the
  // support set, known classes and prototypes must grow consistently and
  // the earliest classes must survive both updates.
  har::HarDataGenerator extra(777);
  // Pretrain artifact knows 4 classes (Run held out). Feed Run first;
  // then a synthetic 6th class derived from E-scooter-like windows
  // cannot exist — so instead run the Run increment and verify a second
  // LearnNewClasses with an already-known class is rejected, while
  // re-running on a fresh learner with both orders works class-by-class.
  PiloteLearner learner(state_->artifact, state_->config);
  MustLearn(learner, state_->d_new);
  EXPECT_EQ(learner.known_classes().size(), 5u);
  EXPECT_EQ(learner.classifier().NumClasses(), 5);

  data::Dataset old_test =
      state_->test_all.FilterByClasses(state_->artifact.old_classes);
  EXPECT_GT(learner.Evaluate(old_test), 0.7);
}

TEST_F(PipelineTest, AnchoredVariantAlsoLearnsNewClass) {
  PiloteConfig anchored_config = state_->config;
  anchored_config.anchor_old_pair_side = true;
  PiloteLearner learner(state_->artifact, anchored_config);
  MustLearn(learner, state_->d_new);
  data::Dataset run_test =
      state_->test_all.FilterByClass(ActivityLabel(Activity::kRun));
  auto per_class = eval::PerClassAccuracy(
      learner.Predict(run_test.features()), run_test.labels());
  EXPECT_GT(per_class[ActivityLabel(Activity::kRun)], 0.25);
}

TEST_F(PipelineTest, PaperContrastiveFormStillWorksEndToEnd) {
  PiloteConfig eq2_config = state_->config;
  eq2_config.incremental.contrastive_form =
      losses::ContrastiveForm::kSquaredHinge;
  PiloteLearner learner(state_->artifact, eq2_config);
  MustLearn(learner, state_->d_new);
  EXPECT_GT(learner.Evaluate(state_->test_all), 0.6);
}

TEST_F(PipelineTest, CloudPretrainerRejectsWrongFeatureWidth) {
  CloudPretrainer pretrainer(state_->config);
  data::Dataset bad(Tensor(Shape::Matrix(10, 7)), std::vector<int>(10, 0));
  Result<CloudPretrainResult> result = pretrainer.Run(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineTest, EvaluateOnEmptyTestSetIsFatal) {
  PretrainedLearner learner(state_->artifact, state_->config);
  data::Dataset empty;
  EXPECT_DEATH(learner.Evaluate(empty), "CHECK failed");
}

TEST_F(PipelineTest, CacheBudgetSurvivesNewClass) {
  PiloteLearner learner(state_->artifact, state_->config);
  MustLearn(learner, state_->d_new);
  // Device enforces a total budget across the now-5 classes.
  learner.EnforceSupportBudget(100);  // m = 20/class
  for (int label : learner.support().Classes()) {
    EXPECT_LE(learner.support().CountForClass(label), 20);
  }
  EXPECT_GT(learner.Evaluate(state_->test_all), 0.5);
}

TEST_F(PipelineTest, AdaptPrototypeValidatesInputs) {
  PretrainedLearner learner(state_->artifact, state_->config);
  const Tensor rows = state_->test_all.features();

  Status unknown = learner.AdaptPrototype(ActivityLabel(Activity::kRun),
                                          rows, 0.5);
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);

  const int known = learner.known_classes().front();
  Status empty = learner.AdaptPrototype(known, Tensor(), 0.5);
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);

  Tensor narrow(Shape::Matrix(4, 7));
  Status bad_width = learner.AdaptPrototype(known, narrow, 0.5);
  EXPECT_EQ(bad_width.code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(learner.AdaptPrototype(known, rows, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(learner.AdaptPrototype(known, rows, 1.5).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PipelineTest, AdaptPrototypeBlendsAndRebuildUndoesIt) {
  PretrainedLearner learner(state_->artifact, state_->config);
  const int label = learner.known_classes().front();
  const Tensor before = learner.classifier().prototype(label);
  const int64_t version_before = learner.model_version();

  // One user's walking data, drawn from a drifted simulator.
  har::HarDataGenerator user_gen(4242);
  data::Dataset user_rows = user_gen.Generate(
      static_cast<Activity>(label), 12);

  // rate = 1 replaces the prototype with the mean user embedding.
  ASSERT_TRUE(
      learner.AdaptPrototype(label, user_rows.features(), 1.0).ok());
  const Tensor embedded = learner.EmbedRaw(user_rows.features());
  const Tensor& adapted = learner.classifier().prototype(label);
  for (int64_t d = 0; d < adapted.dim(0); ++d) {
    float mean = 0.0f;
    for (int64_t r = 0; r < embedded.rows(); ++r) mean += embedded(r, d);
    mean /= static_cast<float>(embedded.rows());
    EXPECT_NEAR(adapted[d], mean, 1e-4f);
  }
  EXPECT_GT(learner.model_version(), version_before);
  // The compiled plan was recaptured at the new version.
  if (learner.inference_plan() != nullptr) {
    EXPECT_EQ(learner.plan_version(), learner.model_version());
  }

  // Personalization is ephemeral: a prototype rebuild re-derives the
  // fleet-shared prototype from the support set.
  learner.RebuildPrototypes();
  const Tensor& restored = learner.classifier().prototype(label);
  ASSERT_EQ(restored.dim(0), before.dim(0));
  for (int64_t d = 0; d < restored.dim(0); ++d) {
    EXPECT_NEAR(restored[d], before[d], 1e-5f);
  }
}

TEST_F(PipelineTest, FactoryRejectsUnknownStrategy) {
  Result<std::unique_ptr<EdgeLearner>> made =
      MakeEdgeLearner("magic", state_->artifact, state_->config);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(made.status().message().find("unknown edge learner strategy"),
            std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace pilote
