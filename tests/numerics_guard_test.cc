#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "common/numerics_guard.h"
#include "losses/contrastive.h"
#include "losses/distillation.h"
#include "losses/joint.h"
#include "optim/sgd.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// Enables the guard at runtime for the duration of each test so the suite
// exercises the checking path in every build configuration (in a
// -DPILOTE_DEBUG_NUMERICS=ON build the guard is unconditionally on).
class NumericsGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The global thread pool may have live workers (GEMM dispatch); fork()
    // death tests need the threadsafe style to re-exec instead.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    numerics::SetEnabled(true);
  }
  void TearDown() override { numerics::SetEnabled(false); }
};

using NumericsGuardDeathTest = NumericsGuardTest;

TEST_F(NumericsGuardTest, FiniteTensorsPassAllGuardedOps) {
  Tensor a = Tensor::Full(Shape::Matrix(3, 4), 2.0f);
  Tensor b = Tensor::Full(Shape::Matrix(3, 4), 0.5f);
  (void)Div(a, b);
  (void)Exp(a);
  (void)Sqrt(a);
  (void)MatMul(a, Transpose(b));
  SUCCEED();
}

TEST_F(NumericsGuardDeathTest, DivisionByZeroIsCaughtAndAttributed) {
  Tensor a = Tensor::Ones(Shape::Matrix(2, 2));
  Tensor b = Tensor::Zeros(Shape::Matrix(2, 2));
  EXPECT_DEATH((void)Div(a, b),
               "non-finite value .* produced by \\[Div\\] shape=\\[2, 2\\]");
}

TEST_F(NumericsGuardDeathTest, ReportsFlatIndexOfFirstCorruptElement) {
  Tensor a = Tensor::Ones(Shape::Vector(8));
  Tensor b = Tensor::Ones(Shape::Vector(8));
  b[5] = 0.0f;
  EXPECT_DEATH((void)Div(a, b), "at flat index 5");
}

TEST_F(NumericsGuardDeathTest, ExpOverflowIsCaught) {
  Tensor a = Tensor::Full(Shape::Vector(3), 1000.0f);
  EXPECT_DEATH((void)Exp(a), "produced by \\[Exp\\]");
}

TEST_F(NumericsGuardDeathTest, SqrtOfNegativeIsCaught) {
  Tensor a = Tensor::Full(Shape::Vector(2), -1.0f);
  EXPECT_DEATH((void)Sqrt(a), "produced by \\[Sqrt\\]");
}

TEST_F(NumericsGuardDeathTest, NanPropagationThroughMatMulIsCaughtAtSource) {
  Tensor a = Tensor::Ones(Shape::Matrix(2, 3));
  a(1, 2) = kNan;
  Tensor b = Tensor::Ones(Shape::Matrix(3, 2));
  EXPECT_DEATH((void)MatMul(a, b), "produced by \\[MatMul\\]");
}

// The acceptance scenario: a NaN deliberately injected into a loss input is
// caught at the loss boundary and attributed to the producing op, instead
// of silently corrupting the prototype state downstream.

TEST_F(NumericsGuardDeathTest, NanInDistillationStudentIsAttributed) {
  Tensor student = Tensor::Ones(Shape::Matrix(4, 8));
  student[5] = kNan;
  Tensor teacher = Tensor::Ones(Shape::Matrix(4, 8));
  autograd::Variable student_var = autograd::Variable::Parameter(student);
  EXPECT_DEATH((void)losses::DistillationLoss(student_var, teacher),
               "DistillationLoss student embedding.*shape=\\[4, 8\\]");
}

TEST_F(NumericsGuardDeathTest, InfInDistillationTeacherIsAttributed) {
  Tensor student = Tensor::Ones(Shape::Matrix(2, 4));
  Tensor teacher = Tensor::Ones(Shape::Matrix(2, 4));
  teacher[0] = kInf;
  autograd::Variable student_var = autograd::Variable::Parameter(student);
  EXPECT_DEATH((void)losses::DistillationLoss(student_var, teacher),
               "DistillationLoss teacher embedding");
}

TEST_F(NumericsGuardDeathTest, NanInContrastiveEmbeddingIsAttributed) {
  Tensor left = Tensor::Ones(Shape::Matrix(3, 4));
  Tensor right = Tensor::Ones(Shape::Matrix(3, 4));
  left(2, 1) = kNan;
  Tensor similar(Shape::Vector(3), {1.0f, 0.0f, 1.0f});
  autograd::Variable left_var = autograd::Variable::Parameter(left);
  autograd::Variable right_var = autograd::Variable::Parameter(right);
  EXPECT_DEATH((void)losses::ContrastiveLoss(left_var, right_var, similar,
                                             /*margin=*/1.0f,
                                             losses::ContrastiveForm::kHadsell),
               "ContrastiveLoss left embedding");
}

TEST_F(NumericsGuardDeathTest, NanGradientCaughtAtOptimizerStep) {
  autograd::Variable param =
      autograd::Variable::Parameter(Tensor::Ones(Shape::Vector(4)));
  Tensor bad_grad = Tensor::Ones(Shape::Vector(4));
  bad_grad[2] = kNan;
  param.node()->AccumulateGrad(bad_grad);
  optim::Sgd sgd({param}, optim::SgdOptions{});
  EXPECT_DEATH(sgd.Step(), "Sgd step grad");
}

TEST_F(NumericsGuardTest, JointLossStaysFiniteOnCleanInputs) {
  autograd::Variable distill =
      autograd::Variable::Constant(Tensor::Scalar(0.25f));
  autograd::Variable contra =
      autograd::Variable::Constant(Tensor::Scalar(0.75f));
  autograd::Variable joint = losses::JointLoss(distill, contra, 0.5f);
  EXPECT_FLOAT_EQ(joint.value()[0], 0.5f);
}

#ifndef PILOTE_DEBUG_NUMERICS
TEST(NumericsGuardDisabledTest, DisabledGuardLetsNonFiniteValuesThrough) {
  // With the runtime switch off (and no compile-time forcing) the guard
  // must be a no-op: Inf flows through, matching the unguarded hot path.
  numerics::SetEnabled(false);
  Tensor a = Tensor::Ones(Shape::Vector(2));
  Tensor b = Tensor::Zeros(Shape::Vector(2));
  Tensor q = Div(a, b);
  EXPECT_TRUE(std::isinf(q[0]));
}
#endif

TEST(NumericsGuardApiTest, EnableDisableRoundTrip) {
  numerics::SetEnabled(true);
  EXPECT_TRUE(numerics::Enabled());
  numerics::SetEnabled(false);
#ifdef PILOTE_DEBUG_NUMERICS
  EXPECT_TRUE(numerics::Enabled());  // compile-time forcing wins
#else
  EXPECT_FALSE(numerics::Enabled());
#endif
}

}  // namespace
}  // namespace pilote
