#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/backbone.h"
#include "serialize/io.h"
#include "serialize/quantize.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace serialize {
namespace {

namespace ag = autograd;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- Tensor IO

TEST(TensorIoTest, RoundTripPreservesShapeAndData) {
  Rng rng(1);
  std::vector<Tensor> tensors = {
      Tensor::RandNormal(Shape::Matrix(7, 5), rng),
      Tensor::RandNormal(Shape::Vector(13), rng),
      Tensor(Shape::Matrix(1, 1), {42.0f}),
  };
  const std::string path = TempPath("pilote_tensors_test.bin");
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  Result<std::vector<Tensor>> loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(AllClose((*loaded)[i], tensors[i], 0.0f, 0.0f));
  }
  std::remove(path.c_str());
}

TEST(TensorIoTest, MissingFileIsIoError) {
  Result<std::vector<Tensor>> result =
      LoadTensors("/nonexistent/dir/file.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(TensorIoTest, CorruptedMagicIsDataLoss) {
  const std::string path = TempPath("pilote_corrupt_test.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a tensor file at all";
  }
  Result<std::vector<Tensor>> result = LoadTensors(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(TensorIoTest, TruncatedPayloadIsDataLoss) {
  Rng rng(2);
  const std::string path = TempPath("pilote_trunc_test.bin");
  ASSERT_TRUE(
      SaveTensors(path, {Tensor::RandNormal(Shape::Matrix(20, 20), rng)})
          .ok());
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  Result<std::vector<Tensor>> result = LoadTensors(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- Corruption matrix
//
// The v2 frame is [u32 magic][u32 version][u64 payload_size][u32 crc]
// [payload]. The matrix drills the whole damage space: truncation at every
// byte boundary, a flip of every single bit, wrong version words — all of
// which must surface as a clean non-OK load, never garbage tensors. The
// legacy v1 frame ([magic][1][body], no CRC) must keep loading.

std::string ReadAllBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

std::string EncodeU32(uint32_t value) {
  return std::string(reinterpret_cast<const char*>(&value), sizeof(value));
}

// A small saved tensor file every matrix test mutates.
std::string SavedTensorBytes(const std::string& path) {
  Rng rng(11);
  Status saved =
      SaveTensors(path, {Tensor::RandNormal(Shape::Matrix(2, 3), rng)});
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return ReadAllBytes(path);
}

TEST(CorruptionMatrixTest, SaveIsByteDeterministicAndLeavesNoTempFile) {
  const std::string path_a = TempPath("pilote_matrix_a.bin");
  const std::string path_b = TempPath("pilote_matrix_b.bin");
  const std::string a = SavedTensorBytes(path_a);
  const std::string b = SavedTensorBytes(path_b);
  EXPECT_EQ(a, b) << "identical tensors must serialize bit-identically";
  EXPECT_FALSE(std::filesystem::exists(path_a + ".tmp"))
      << "atomic save must not leave its temp file behind";
  // Load -> save round-trips to the same bytes, so artifacts can be
  // compared and deduplicated by hash.
  Result<std::vector<Tensor>> loaded = LoadTensors(path_a);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(SaveTensors(path_b, *loaded).ok());
  EXPECT_EQ(ReadAllBytes(path_b), a);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(CorruptionMatrixTest, TruncationAtEveryByteBoundaryIsRejected) {
  const std::string path = TempPath("pilote_matrix_trunc.bin");
  const std::string bytes = SavedTensorBytes(path);
  ASSERT_GT(bytes.size(), 20u);  // must cover header and payload cuts
  for (size_t length = 0; length < bytes.size(); ++length) {
    WriteAllBytes(path, bytes.substr(0, length));
    Result<std::vector<Tensor>> result = LoadTensors(path);
    EXPECT_FALSE(result.ok()) << "loaded a file truncated to " << length
                              << " of " << bytes.size() << " bytes";
  }
  std::remove(path.c_str());
}

TEST(CorruptionMatrixTest, EverySingleBitFlipIsRejected) {
  const std::string path = TempPath("pilote_matrix_flip.bin");
  const std::string bytes = SavedTensorBytes(path);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      WriteAllBytes(path, mutated);
      Result<std::vector<Tensor>> result = LoadTensors(path);
      EXPECT_FALSE(result.ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptionMatrixTest, UnknownVersionWordIsRejected) {
  const std::string path = TempPath("pilote_matrix_version.bin");
  const std::string bytes = SavedTensorBytes(path);
  for (uint32_t version : {0u, 3u, 7u, 0xFFFFFFFFu}) {
    std::string mutated =
        bytes.substr(0, 4) + EncodeU32(version) + bytes.substr(8);
    WriteAllBytes(path, mutated);
    Result<std::vector<Tensor>> result = LoadTensors(path);
    ASSERT_FALSE(result.ok()) << "version " << version;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
  std::remove(path.c_str());
}

TEST(CorruptionMatrixTest, LegacyV1TensorFileStillLoads) {
  const std::string path = TempPath("pilote_matrix_v1.bin");
  Rng rng(12);
  Tensor original = Tensor::RandNormal(Shape::Matrix(4, 5), rng);
  ASSERT_TRUE(SaveTensors(path, {original}).ok());
  const std::string v2 = ReadAllBytes(path);
  // v2 header is magic(4) + version(4) + size(8) + crc(4); the payload
  // after it is exactly the v1 body, so the legacy file is magic +
  // version word 1 + body.
  const std::string v1 = v2.substr(0, 4) + EncodeU32(1) + v2.substr(20);
  WriteAllBytes(path, v1);
  Result<std::vector<Tensor>> loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_TRUE(AllClose((*loaded)[0], original, 0.0f, 0.0f));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- Module IO

TEST(ModuleIoTest, FileRoundTripReproducesOutputs) {
  Rng rng(3);
  nn::MlpBackbone original(nn::BackboneConfig::Small(), rng);
  nn::MlpBackbone restored(nn::BackboneConfig::Small(), rng);

  const std::string path = TempPath("pilote_module_test.bin");
  ASSERT_TRUE(SaveModule(path, original).ok());
  ASSERT_TRUE(LoadModule(path, restored).ok());

  Tensor x = Tensor::RandNormal(Shape::Matrix(4, 80), rng);
  original.SetTraining(false);
  restored.SetTraining(false);
  Tensor a = original.Forward(ag::Variable::Constant(x)).value();
  Tensor b = restored.Forward(ag::Variable::Constant(x)).value();
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(ModuleIoTest, InMemoryRoundTrip) {
  Rng rng(4);
  nn::MlpBackbone original(nn::BackboneConfig::Small(), rng);
  nn::MlpBackbone restored(nn::BackboneConfig::Small(), rng);
  std::string payload = SerializeModuleToString(original);
  EXPECT_GT(payload.size(), 1000u);
  ASSERT_TRUE(DeserializeModuleFromString(payload, restored).ok());
  Tensor x = Tensor::RandNormal(Shape::Matrix(2, 80), rng);
  EXPECT_TRUE(AllClose(
      original.Forward(ag::Variable::Constant(x)).value(),
      restored.Forward(ag::Variable::Constant(x)).value(), 0.0f, 0.0f));
}

TEST(ModuleIoTest, StructureMismatchIsDataLoss) {
  Rng rng(5);
  nn::MlpBackbone small(nn::BackboneConfig::Small(), rng);
  nn::BackboneConfig other_config = nn::BackboneConfig::Small();
  other_config.embedding_dim = 16;
  nn::MlpBackbone other(other_config, rng);
  std::string payload = SerializeModuleToString(small);
  Status status = DeserializeModuleFromString(payload, other);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------- Half floats

TEST(HalfFloatTest, ExactlyRepresentableValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.25f, 1024.0f, 0.125f}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << v;
  }
}

TEST(HalfFloatTest, RelativeErrorWithinHalfPrecision) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.UniformDouble(-100.0, 100.0));
    const float r = HalfToFloat(FloatToHalf(v));
    EXPECT_NEAR(r, v, std::fabs(v) * 1e-3f + 1e-4f);
  }
}

TEST(HalfFloatTest, OverflowSaturatesToInfinity) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e20f))));
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(-1e20f))));
  EXPECT_LT(HalfToFloat(FloatToHalf(-1e20f)), 0.0f);
}

TEST(HalfFloatTest, NanPropagates) {
  EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(NAN))));
}

TEST(HalfFloatTest, SubnormalsSurvive) {
  // 1e-5 is subnormal in binary16 but still representable approximately.
  const float v = 1e-5f;
  const float r = HalfToFloat(FloatToHalf(v));
  EXPECT_NEAR(r, v, 1e-6f);
}

// ---------------------------------------------------------------- Quantization

class QuantizeModeTest : public ::testing::TestWithParam<QuantMode> {};

TEST_P(QuantizeModeTest, RoundTripWithinModeTolerance) {
  Rng rng(7);
  Tensor t = Tensor::RandNormal(Shape::Matrix(40, 80), rng, 0.0f, 3.0f);
  QuantizedTensor q = QuantizedTensor::Quantize(t, GetParam());
  Tensor back = q.Dequantize();
  ASSERT_EQ(back.shape(), t.shape());
  float tolerance = 0.0f;
  switch (GetParam()) {
    case QuantMode::kFloat32:
      tolerance = 0.0f;
      break;
    case QuantMode::kFloat16:
      tolerance = 0.01f;
      break;
    case QuantMode::kInt8:
      // Error bounded by half a quantization step over the value range.
      tolerance = (MaxValue(t) - (-MaxValue(Neg(t)))) / 255.0f;
      break;
  }
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(back[i], t[i], tolerance + 1e-6f) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, QuantizeModeTest,
                         ::testing::Values(QuantMode::kFloat32,
                                           QuantMode::kFloat16,
                                           QuantMode::kInt8));

TEST(QuantizeTest, SizesShrinkWithMode) {
  Rng rng(8);
  Tensor t = Tensor::RandNormal(Shape::Matrix(100, 80), rng);
  const int64_t fp32 =
      QuantizedTensor::Quantize(t, QuantMode::kFloat32).SizeBytes();
  const int64_t fp16 =
      QuantizedTensor::Quantize(t, QuantMode::kFloat16).SizeBytes();
  const int64_t int8 =
      QuantizedTensor::Quantize(t, QuantMode::kInt8).SizeBytes();
  EXPECT_GT(fp32, fp16);
  EXPECT_GT(fp16, int8);
  // Roughly 4 / 2 / 1 bytes per element.
  EXPECT_NEAR(static_cast<double>(fp32) / int8, 4.0, 0.2);
}

TEST(QuantizeTest, ConstantTensorIsExactUnderInt8) {
  Tensor t(Shape::Matrix(5, 5), 3.25f);
  Tensor back = QuantizedTensor::Quantize(t, QuantMode::kInt8).Dequantize();
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_NEAR(back[i], 3.25f, 1e-5f);
}

TEST(QuantizeTest, PaperStorageClaimOrderOfMagnitude) {
  // Sec 6.3: 200 exemplars/class (5 classes) of 80 features should fit in
  // a few hundred KB uncompressed — verify our accounting is in that range.
  Rng rng(9);
  Tensor exemplars = Tensor::RandNormal(Shape::Matrix(1000, 80), rng);
  const int64_t bytes =
      QuantizedTensor::Quantize(exemplars, QuantMode::kFloat32).SizeBytes();
  EXPECT_NEAR(static_cast<double>(bytes), 320000.0, 1000.0);
}

}  // namespace
}  // namespace serialize
}  // namespace pilote
