// Property-style tests: invariants swept over seeds, shapes and
// configurations with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <cmath>
#include <memory>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "core/exemplar_selector.h"
#include "core/ncm_classifier.h"
#include "har/feature_extractor.h"
#include "har/har_dataset.h"
#include "losses/contrastive.h"
#include "losses/pair_sampler.h"
#include "nn/backbone.h"
#include "serialize/io.h"
#include "serialize/quantize.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

// --------------------------------------------------------------- RNG sweep

class RngSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedTest, UniformDoubleMeanIsCentered) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST_P(RngSeedTest, SampleWithoutReplacementIsAlwaysDistinct) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.UniformInt(1, 40);
    const int k = rng.UniformInt(0, n);
    std::vector<int> sample = rng.SampleWithoutReplacement(n, k);
    std::sort(sample.begin(), sample.end());
    EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
                sample.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0ull, 1ull, 42ull, 31337ull,
                                           0xFFFFFFFFFFFFFFFFull));

// ------------------------------------------------------------ Herding sweep

class HerdingPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HerdingPropertyTest, PrefixConsistency) {
  // Herding's greedy order means HerdingSelect(k) is a prefix of
  // HerdingSelect(k') for k < k' — the property that lets the support set
  // be trimmed instead of reselected.
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Tensor embeddings = Tensor::RandNormal(Shape::Matrix(n, 6), rng);
  std::vector<int64_t> small = core::HerdingSelect(embeddings, n / 3);
  std::vector<int64_t> large = core::HerdingSelect(embeddings, n);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], large[i]) << "prefix broken at " << i;
  }
}

TEST_P(HerdingPropertyTest, RunningMeanErrorIsMonotonicallyHelpful) {
  // The herded prefix mean must approximate the class mean at least as
  // well as the first element alone.
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) ^ 0xBEEF);
  Tensor embeddings = Tensor::RandNormal(Shape::Matrix(n, 6), rng);
  Tensor mu = ColumnMean(embeddings);
  std::vector<int64_t> order = core::HerdingSelect(embeddings, n / 2);
  const float first_err =
      SquaredDistance(RowAt(embeddings, order[0]), mu);
  Tensor prefix_mean =
      ColumnMean(GatherRows(embeddings, order));
  EXPECT_LE(SquaredDistance(prefix_mean, mu), first_err + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HerdingPropertyTest,
                         ::testing::Combine(::testing::Values(9, 30, 120),
                                            ::testing::Values(1, 7, 99)));

// ------------------------------------------------------- Quantization sweep

class QuantizationPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<serialize::QuantMode, int, float>> {};

TEST_P(QuantizationPropertyTest, ErrorBoundedByStepSize) {
  const auto [mode, rows, scale] = GetParam();
  Rng rng(static_cast<uint64_t>(rows) * 31 + 7);
  Tensor t = Tensor::RandNormal(Shape::Matrix(rows, 20), rng, 0.0f, scale);
  serialize::QuantizedTensor q = serialize::QuantizedTensor::Quantize(t, mode);
  Tensor back = q.Dequantize();
  float bound = 0.0f;
  switch (mode) {
    case serialize::QuantMode::kFloat32:
      bound = 0.0f;
      break;
    case serialize::QuantMode::kFloat16:
      bound = 1e-3f * scale * 6 + 1e-4f;  // relative half precision
      break;
    case serialize::QuantMode::kInt8: {
      float lo = 1e30f;
      float hi = -1e30f;
      for (int64_t i = 0; i < t.numel(); ++i) {
        lo = std::min(lo, t[i]);
        hi = std::max(hi, t[i]);
      }
      bound = (hi - lo) / 255.0f;  // one quantization step
      break;
    }
  }
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(back[i] - t[i]), bound + 1e-6f) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndShapes, QuantizationPropertyTest,
    ::testing::Combine(::testing::Values(serialize::QuantMode::kFloat32,
                                         serialize::QuantMode::kFloat16,
                                         serialize::QuantMode::kInt8),
                       ::testing::Values(1, 17, 64),
                       ::testing::Values(0.1f, 1.0f, 50.0f)));

// -------------------------------------------------------- Contrastive sweep

class ContrastiveFormTest
    : public ::testing::TestWithParam<losses::ContrastiveForm> {};

TEST_P(ContrastiveFormTest, LossIsNonNegativeAndZeroForFarNegatives) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor left = Tensor::RandNormal(Shape::Matrix(8, 4), rng);
    Tensor right = Tensor::RandNormal(Shape::Matrix(8, 4), rng);
    Tensor y(Shape::Vector(8));
    for (int i = 0; i < 8; ++i) y[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    const float value =
        losses::ContrastiveLossValue(left, right, y, 2.0f, GetParam());
    EXPECT_GE(value, 0.0f);
  }
  // Far-apart negatives cost nothing under both forms.
  Tensor far_left(Shape::Matrix(1, 2), {0.0f, 0.0f});
  Tensor far_right(Shape::Matrix(1, 2), {100.0f, 0.0f});
  Tensor y_neg(Shape::Vector(1), {0.0f});
  EXPECT_FLOAT_EQ(losses::ContrastiveLossValue(far_left, far_right, y_neg,
                                               2.0f, GetParam()),
                  0.0f);
}

TEST_P(ContrastiveFormTest, PositiveTermIsFormIndependent) {
  Rng rng(6);
  Tensor left = Tensor::RandNormal(Shape::Matrix(8, 4), rng);
  Tensor right = Tensor::RandNormal(Shape::Matrix(8, 4), rng);
  Tensor y(Shape::Vector(8), 1.0f);  // all positives
  EXPECT_NEAR(
      losses::ContrastiveLossValue(left, right, y, 3.0f, GetParam()),
      losses::ContrastiveLossValue(left, right, y, 3.0f,
                                   losses::ContrastiveForm::kSquaredHinge),
      1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Forms, ContrastiveFormTest,
                         ::testing::Values(
                             losses::ContrastiveForm::kSquaredHinge,
                             losses::ContrastiveForm::kHadsell));

// ---------------------------------------------------------- Simulator sweep

class ActivityPropertyTest
    : public ::testing::TestWithParam<har::Activity> {};

TEST_P(ActivityPropertyTest, WindowsAreFiniteAndShaped) {
  har::SensorSimulator simulator(11 + static_cast<uint64_t>(
                                          har::ActivityLabel(GetParam())));
  for (int i = 0; i < 5; ++i) {
    Tensor window = simulator.GenerateWindow(GetParam());
    ASSERT_EQ(window.rows(), har::kWindowLength);
    ASSERT_EQ(window.cols(), har::kNumChannels);
    for (int64_t j = 0; j < window.numel(); ++j) {
      ASSERT_TRUE(std::isfinite(window[j])) << "non-finite sample";
    }
  }
}

TEST_P(ActivityPropertyTest, FeaturesAreFiniteAndDeterministic) {
  har::HarDataGenerator a(1234);
  har::HarDataGenerator b(1234);
  data::Dataset da = a.Generate(GetParam(), 4);
  data::Dataset db = b.Generate(GetParam(), 4);
  EXPECT_TRUE(AllClose(da.features(), db.features(), 0.0f, 0.0f));
  for (int64_t i = 0; i < da.features().numel(); ++i) {
    ASSERT_TRUE(std::isfinite(da.features()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Activities, ActivityPropertyTest,
    ::testing::Values(har::Activity::kDrive, har::Activity::kEscooter,
                      har::Activity::kRun, har::Activity::kStill,
                      har::Activity::kWalk));

// ----------------------------------------------------------- Sampler sweep

class PairStrategySeedTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PairStrategySeedTest, SimilarityLabelsAlwaysMatchFeatures) {
  const auto [per_class, seed] = GetParam();
  // Feature value encodes the class, so every emitted pair is checkable.
  const int num_classes = 3;
  Tensor features(Shape::Matrix(num_classes * per_class, 1));
  std::vector<int> labels;
  for (int c = 0; c < num_classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      features(c * per_class + i, 0) = static_cast<float>(c);
      labels.push_back(c);
    }
  }
  losses::PairSampler sampler(features, labels,
                              losses::PairStrategy::kBalancedRandom, seed);
  losses::PairBatch batch = sampler.Next(128);
  for (int64_t i = 0; i < 128; ++i) {
    const bool same = batch.left(i, 0) == batch.right(i, 0);
    ASSERT_EQ(batch.similar[i], same ? 1.0f : 0.0f) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PairStrategySeedTest,
    ::testing::Combine(::testing::Values(2, 5, 20),
                       ::testing::Values(1ull, 77ull, 31415ull)));

// --------------------------------------------------------------- NCM sweep

class NcmMetricTest : public ::testing::TestWithParam<core::NcmDistance> {};

TEST_P(NcmMetricTest, PredictionsAreAlwaysRegisteredLabels) {
  Rng rng(17);
  core::NcmClassifier ncm(GetParam());
  for (int label : {2, 5, 9}) {
    ncm.SetPrototype(label, Tensor::RandNormal(Shape::Vector(4), rng));
  }
  Tensor queries = Tensor::RandNormal(Shape::Matrix(50, 4), rng, 0.0f, 10.0f);
  for (int label : ncm.Predict(queries)) {
    EXPECT_TRUE(label == 2 || label == 5 || label == 9) << label;
  }
}

TEST_P(NcmMetricTest, PrototypeItselfIsItsNearestClass) {
  Rng rng(18);
  core::NcmClassifier ncm(GetParam());
  std::vector<int> labels = {0, 1, 2, 3};
  std::vector<Tensor> prototypes;
  for (int label : labels) {
    Tensor p = Tensor::RandNormal(Shape::Vector(6), rng, 0.0f, 5.0f);
    ncm.SetPrototype(label, p);
    prototypes.push_back(p);
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    Tensor query = prototypes[i].Reshape(Shape::Matrix(1, 6));
    EXPECT_EQ(ncm.Predict(query).front(), labels[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, NcmMetricTest,
                         ::testing::Values(
                             core::NcmDistance::kSquaredEuclidean,
                             core::NcmDistance::kCosine));

// ------------------------------------------------------- Rollback sweep

// Handcrafted artifact (random backbone, offset class clusters) so the
// rollback sweep doesn't pay for cloud pre-training on every seed.
core::CloudArtifact MakeRollbackArtifact(const core::PiloteConfig& config) {
  Rng rng(505);
  nn::MlpBackbone model(config.backbone, rng);
  core::CloudArtifact artifact;
  artifact.backbone_config = config.backbone;
  artifact.model_payload = serialize::SerializeModuleToString(model);
  const int64_t input_dim = config.backbone.input_dim;
  artifact.scaler.Fit(Tensor::RandNormal(Shape::Matrix(64, input_dim), rng));
  for (int label = 0; label < 4; ++label) {
    Tensor exemplars =
        Tensor::RandNormal(Shape::Matrix(8, input_dim), rng,
                           static_cast<float>(2 * label), 0.25f);
    artifact.support.SetClassExemplars(label,
                                       artifact.scaler.Transform(exemplars));
    artifact.old_classes.push_back(label);
  }
  return artifact;
}

data::Dataset ClassDataset(int label, int64_t input_dim, Rng& rng) {
  Tensor features = Tensor::RandNormal(Shape::Matrix(12, input_dim), rng,
                                       static_cast<float>(2 * label), 0.3f);
  return data::Dataset(std::move(features), std::vector<int>(12, label));
}

class RollbackScheduleTest : public ::testing::TestWithParam<uint64_t> {};

// Property: under a seeded random failpoint schedule, every failed
// LearnNewClasses leaves the learner exactly as it was (class list and
// predictions bit-identical), every successful one grows the class list
// by one, and a clean call after the storm always succeeds — i.e. faults
// never wedge or corrupt the learner, regardless of where they land.
TEST_P(RollbackScheduleTest, RandomFaultSchedulesNeverLeakPartialState) {
  const uint64_t seed = GetParam();
  fail::ScopedFailpoints scope;
  core::PiloteConfig config = core::PiloteConfig::Small();
  config.exemplars_per_class = 12;
  core::CloudArtifact artifact = MakeRollbackArtifact(config);
  Result<std::unique_ptr<core::EdgeLearner>> made =
      core::MakeEdgeLearner("pretrained", artifact, config);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  std::unique_ptr<core::EdgeLearner> learner = std::move(made).value();

  const int64_t input_dim = config.backbone.input_dim;
  Rng data_rng(seed ^ 0xD00DULL);
  Tensor probe = Tensor::RandNormal(Shape::Matrix(6, input_dim), data_rng);
  ASSERT_TRUE(fail::FailpointRegistry::Global()
                  .Arm("core/learn/mid",
                       fail::FailpointSpec::WithProbability(0.4, seed))
                  .ok());
  ASSERT_TRUE(fail::FailpointRegistry::Global()
                  .Arm("core/learn/commit",
                       fail::FailpointSpec::WithProbability(
                           0.4, seed ^ 0x9E3779B97F4A7C15ULL))
                  .ok());

  int next_label = 4;
  int failures = 0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    data::Dataset d_new = ClassDataset(next_label, input_dim, data_rng);
    const std::vector<int> pre_known = learner->known_classes();
    const std::vector<int> pre_predictions = learner->Predict(probe);
    Result<core::TrainReport> result = learner->LearnNewClasses(d_new);
    if (result.ok()) {
      EXPECT_EQ(learner->known_classes().size(), pre_known.size() + 1);
      ++next_label;
    } else {
      ++failures;
      EXPECT_EQ(learner->known_classes(), pre_known)
          << "failure leaked a class-list change (attempt " << attempt << ")";
      EXPECT_EQ(learner->Predict(probe), pre_predictions)
          << "failure leaked model/prototype state (attempt " << attempt
          << ")";
    }
  }
  // p(no fire in 10 attempts) = 0.36^10; with the repo's deterministic
  // Rng this is a fixed schedule per seed, not a flake source.
  EXPECT_GT(failures, 0);

  fail::FailpointRegistry::Global().DisarmAll();
  data::Dataset d_clean = ClassDataset(next_label, input_dim, data_rng);
  Result<core::TrainReport> clean = learner->LearnNewClasses(d_clean);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(learner->support().HasClass(next_label));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackScheduleTest,
                         ::testing::Values(1ull, 7ull, 42ull, 31337ull));

}  // namespace
}  // namespace pilote
