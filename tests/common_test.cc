#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace pilote {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad margin");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad margin");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad margin");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::FailedPrecondition("").code(),
      Status::OutOfRange("").code(),      Status::Unimplemented("").code(),
      Status::Internal("").code(),        Status::DataLoss("").code(),
      Status::ResourceExhausted("").code(), Status::IoError("").code()};
  EXPECT_EQ(codes.size(), 10u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailsThenPropagates(bool fail) {
  PILOTE_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int value) {
  if (value <= 0) return Status::InvalidArgument("not positive");
  return value;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = ParsePositive(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ParsePositive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(42), 42);
}

Result<int> DoubleIt(int value) {
  PILOTE_ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleIt(4).value(), 8);
  EXPECT_FALSE(DoubleIt(0).ok());
}

TEST(ResultDeathTest, ValueOnErrorIsFatal) {
  EXPECT_DEATH(
      {
        Result<int> result = ParsePositive(-5);
        (void)result.value();
      },
      "Result::value");
}

// ---------------------------------------------------------------- CHECK

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(PILOTE_CHECK(1 == 2) << "math broke", "CHECK failed");
}

TEST(CheckDeathTest, CheckOpPrintsOperands) {
  const int lhs = 3;
  const int rhs = 5;
  EXPECT_DEATH(PILOTE_CHECK_EQ(lhs, rhs), "3 vs 5");
}

TEST(CheckTest, PassingChecksAreSilent) {
  PILOTE_CHECK(true) << "never evaluated";
  PILOTE_CHECK_LE(1, 2);
  PILOTE_DCHECK(true);
  SUCCEED();
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 3));
  EXPECT_EQ(seen, (std::set<int>{-2, -1, 0, 1, 2, 3}));
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(13);
  std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(13);
  std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream differs from the parent continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.NextUint64() != child.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int64_t sum = 0;
  pool.ParallelFor(10, [&](int64_t i) { sum += i; });  // safe: inline
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, RangesCoverWithoutOverlap) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  pool.ParallelForRanges(1000, [&](int64_t begin, int64_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace pilote
