#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "optim/adam.h"
#include "optim/lr_scheduler.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

namespace ag = autograd;

// Minimizes ||x - target||^2 with the given optimizer factory; returns the
// final squared distance to the target.
template <typename MakeOptimizer>
float MinimizeQuadratic(MakeOptimizer make, int steps) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(4), 5.0f));
  Tensor target(Shape::Vector(4), {1.0f, -2.0f, 0.5f, 3.0f});
  auto optimizer = make(std::vector<ag::Variable>{x});
  for (int i = 0; i < steps; ++i) {
    ag::Variable loss =
        ag::Sum(ag::Square(ag::Sub(x, ag::Variable::Constant(target))));
    optimizer->ZeroGrad();
    loss.Backward();
    optimizer->Step();
  }
  return SquaredDistance(x.value(), target);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  const float dist = MinimizeQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params),
                                            optim::SgdOptions{.lr = 0.1f});
      },
      100);
  EXPECT_LT(dist, 1e-6f);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  const float plain = MinimizeQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<optim::Sgd>(std::move(params),
                                            optim::SgdOptions{.lr = 0.01f});
      },
      40);
  const float momentum = MinimizeQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<optim::Sgd>(
            std::move(params),
            optim::SgdOptions{.lr = 0.01f, .momentum = 0.9f});
      },
      40);
  EXPECT_LT(momentum, plain);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(2), 1.0f));
  optim::Sgd sgd({x}, {.lr = 0.1f, .weight_decay = 1.0f});
  // Zero gradient: only decay acts.
  ag::Variable loss = ag::MulScalar(ag::Sum(x), 0.0f);
  sgd.ZeroGrad();
  loss.Backward();
  sgd.Step();
  EXPECT_NEAR(x.value()[0], 0.9f, 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  const float dist = MinimizeQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<optim::Adam>(std::move(params),
                                             optim::AdamOptions{.lr = 0.1f});
      },
      200);
  EXPECT_LT(dist, 1e-4f);
}

TEST(AdamTest, SkipsParamsWithoutGradients) {
  ag::Variable used = ag::Variable::Parameter(Tensor(Shape::Vector(1), 1.0f));
  ag::Variable unused = ag::Variable::Parameter(Tensor(Shape::Vector(1), 7.0f));
  optim::Adam adam({used, unused}, {.lr = 0.5f});
  ag::Variable loss = ag::Sum(ag::Square(used));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();
  EXPECT_EQ(unused.value()[0], 7.0f);
  EXPECT_NE(used.value()[0], 1.0f);
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(AdamTest, FirstStepMovesByApproximatelyLr) {
  // With bias correction, the first Adam step has magnitude ~lr.
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(1), 10.0f));
  optim::Adam adam({x}, {.lr = 0.01f});
  ag::Variable loss = ag::Sum(ag::Square(x));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();
  EXPECT_NEAR(x.value()[0], 10.0f - 0.01f, 1e-4f);
}

TEST(ClipGradNormTest, ScalesLargeGradients) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(2), 0.0f));
  x.node()->AccumulateGrad(Tensor(Shape::Vector(2), {3.0f, 4.0f}));
  std::vector<ag::Variable> params = {x};
  const float norm = optim::ClipGradNorm(params, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-5f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(2), 0.0f));
  x.node()->AccumulateGrad(Tensor(Shape::Vector(2), {0.3f, 0.4f}));
  std::vector<ag::Variable> params = {x};
  optim::ClipGradNorm(params, 1.0f);
  EXPECT_NEAR(x.grad()[0], 0.3f, 1e-6f);
}

// ---- LR schedulers ----

TEST(LrSchedulerTest, HalvingMatchesPaperSchedule) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(1)));
  optim::Sgd sgd({x}, {.lr = 0.01f});
  optim::HalvingLr scheduler(&sgd, 0.01f, 1e-6f);
  scheduler.OnEpochBegin(0);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.01f);
  scheduler.OnEpochBegin(1);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.005f);
  scheduler.OnEpochBegin(3);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.00125f);
}

TEST(LrSchedulerTest, HalvingRespectsFloor) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(1)));
  optim::Sgd sgd({x}, {.lr = 0.01f});
  optim::HalvingLr scheduler(&sgd, 0.01f, 1e-4f);
  scheduler.OnEpochBegin(50);
  EXPECT_FLOAT_EQ(sgd.lr(), 1e-4f);
}

TEST(LrSchedulerTest, StepDecay) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(1)));
  optim::Sgd sgd({x}, {.lr = 1.0f});
  optim::StepLr scheduler(&sgd, 1.0f, 10, 0.1f);
  scheduler.OnEpochBegin(9);
  EXPECT_FLOAT_EQ(sgd.lr(), 1.0f);
  scheduler.OnEpochBegin(10);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.1f);
  scheduler.OnEpochBegin(25);
  EXPECT_NEAR(sgd.lr(), 0.01f, 1e-8f);
}

TEST(LrSchedulerTest, ConstantNeverChanges) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(1)));
  optim::Sgd sgd({x}, {.lr = 0.5f});
  optim::ConstantLr scheduler(&sgd, 0.42f);
  scheduler.OnEpochBegin(0);
  scheduler.OnEpochBegin(100);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.42f);
}

}  // namespace
}  // namespace pilote
