#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

// ---------------------------------------------------------------- Shape

TEST(ShapeTest, BasicProperties) {
  Shape s({2, 3});
  EXPECT_EQ(s.rank(), 2);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.numel(), 6);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 3);
  EXPECT_EQ(s.ToString(), "[2, 3]");
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({4}), Shape::Vector(4));
  EXPECT_EQ(Shape({2, 5}), Shape::Matrix(2, 5));
  EXPECT_NE(Shape({2, 5}), Shape({5, 2}));
}

TEST(ShapeTest, EmptyShapeHasOneElement) {
  // Rank-0 shape: scalar container semantics.
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

// ---------------------------------------------------------------- Tensor

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape::Matrix(3, 4));
  EXPECT_EQ(t.numel(), 12);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillAndAccess) {
  Tensor t(Shape::Matrix(2, 2), 3.5f);
  EXPECT_EQ(t(0, 0), 3.5f);
  t(1, 0) = -1.0f;
  EXPECT_EQ(t[2], -1.0f);  // row-major layout
}

TEST(TensorTest, FromDataValidatesSize) {
  Tensor t(Shape::Vector(3), {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t[1], 2.0f);
  EXPECT_DEATH(Tensor(Shape::Vector(4), std::vector<float>{1.0f}),
               "CHECK failed");
}

// Accessor bounds are PILOTE_DCHECK-guarded: fatal in debug builds, compiled
// out of the release hot path. The death tests therefore only run when
// NDEBUG is not defined; the release expectation is covered by the DCHECK
// expansion tests in macros_test.cc.
#ifndef NDEBUG
TEST(TensorAccessorDeathTest, FlatIndexOutOfRangeIsFatal) {
  Tensor t(Shape::Vector(4), 1.0f);
  EXPECT_DEATH((void)t[4], "CHECK failed");
  EXPECT_DEATH((void)t[-1], "CHECK failed");
}

TEST(TensorAccessorDeathTest, MatrixIndexOutOfRangeIsFatal) {
  Tensor t(Shape::Matrix(2, 3), 1.0f);
  EXPECT_DEATH((void)t(2, 0), "CHECK failed");
  EXPECT_DEATH((void)t(0, 3), "CHECK failed");
  EXPECT_DEATH((void)t(-1, 0), "CHECK failed");
}

TEST(TensorAccessorDeathTest, MatrixAccessOnVectorIsFatal) {
  Tensor t(Shape::Vector(6), 1.0f);
  EXPECT_DEATH((void)t(0, 0), "CHECK failed");
}

TEST(TensorAccessorDeathTest, RowPointerOutOfRangeIsFatal) {
  Tensor t(Shape::Matrix(2, 3), 1.0f);
  EXPECT_DEATH((void)t.row(2), "CHECK failed");
}
#endif  // !NDEBUG

TEST(TensorTest, MutableAccessorsWriteInBounds) {
  Tensor t(Shape::Matrix(2, 2));
  t[0] = 1.0f;
  t(1, 1) = 2.0f;
  *t.row(1) = 3.0f;
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[3], 2.0f);
  EXPECT_EQ(t(1, 0), 3.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(Shape::Matrix(2, 3), {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape(Shape::Matrix(3, 2));
  EXPECT_EQ(r(0, 1), 2.0f);
  EXPECT_EQ(r(2, 1), 6.0f);
  EXPECT_DEATH(t.Reshape(Shape::Matrix(2, 2)), "reshape");
}

TEST(TensorTest, RandNormalIsSeedDeterministic) {
  Rng a(5);
  Rng b(5);
  Tensor x = Tensor::RandNormal(Shape::Vector(64), a);
  Tensor y = Tensor::RandNormal(Shape::Vector(64), b);
  EXPECT_TRUE(AllClose(x, y, 0.0f, 0.0f));
}

TEST(TensorTest, ScalarFactory) {
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s[0], 2.5f);
}

// ---------------------------------------------------------------- Elementwise

TEST(TensorOpsTest, AddSubMulDiv) {
  Tensor a(Shape::Vector(3), {1, 2, 3});
  Tensor b(Shape::Vector(3), {4, 10, 3});
  EXPECT_TRUE(AllClose(Add(a, b), Tensor(Shape::Vector(3), {5, 12, 6})));
  EXPECT_TRUE(AllClose(Sub(b, a), Tensor(Shape::Vector(3), {3, 8, 0})));
  EXPECT_TRUE(AllClose(Mul(a, b), Tensor(Shape::Vector(3), {4, 20, 9})));
  EXPECT_TRUE(AllClose(Div(b, a), Tensor(Shape::Vector(3), {4, 5, 1})));
}

TEST(TensorOpsTest, ShapeMismatchIsFatal) {
  Tensor a(Shape::Vector(3));
  Tensor b(Shape::Vector(4));
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

TEST(TensorOpsTest, ScalarOpsAndUnary) {
  Tensor a(Shape::Vector(3), {-1, 0, 2});
  EXPECT_TRUE(AllClose(AddScalar(a, 1.0f), Tensor(Shape::Vector(3), {0, 1, 3})));
  EXPECT_TRUE(AllClose(MulScalar(a, -2.0f), Tensor(Shape::Vector(3), {2, 0, -4})));
  EXPECT_TRUE(AllClose(Relu(a), Tensor(Shape::Vector(3), {0, 0, 2})));
  EXPECT_TRUE(AllClose(ReluMask(a), Tensor(Shape::Vector(3), {0, 0, 1})));
  EXPECT_TRUE(AllClose(Square(a), Tensor(Shape::Vector(3), {1, 0, 4})));
  EXPECT_TRUE(AllClose(Neg(a), Tensor(Shape::Vector(3), {1, 0, -2})));
  EXPECT_TRUE(AllClose(Clamp(a, -0.5f, 1.0f),
                       Tensor(Shape::Vector(3), {-0.5f, 0, 1})));
}

TEST(TensorOpsTest, AxpyAccumulates) {
  Tensor a(Shape::Vector(2), {1, 1});
  Tensor b(Shape::Vector(2), {2, 3});
  Axpy(2.0f, b, a);
  EXPECT_TRUE(AllClose(a, Tensor(Shape::Vector(2), {5, 7})));
}

// ---------------------------------------------------------------- Broadcast

TEST(TensorOpsTest, RowVectorBroadcasts) {
  Tensor m(Shape::Matrix(2, 3), {1, 2, 3, 4, 5, 6});
  Tensor v(Shape::Vector(3), {10, 20, 30});
  EXPECT_TRUE(AllClose(AddRowVector(m, v),
                       Tensor(Shape::Matrix(2, 3), {11, 22, 33, 14, 25, 36})));
  EXPECT_TRUE(AllClose(SubRowVector(m, v),
                       Tensor(Shape::Matrix(2, 3), {-9, -18, -27, -6, -15, -24})));
  EXPECT_TRUE(AllClose(MulRowVector(m, v),
                       Tensor(Shape::Matrix(2, 3), {10, 40, 90, 40, 100, 180})));
  EXPECT_TRUE(AllClose(DivRowVector(m, v),
                       Tensor(Shape::Matrix(2, 3),
                              {0.1f, 0.1f, 0.1f, 0.4f, 0.25f, 0.2f})));
}

// ---------------------------------------------------------------- Reductions

TEST(TensorOpsTest, Reductions) {
  Tensor m(Shape::Matrix(2, 3), {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(m), 21.0f);
  EXPECT_FLOAT_EQ(Mean(m), 3.5f);
  EXPECT_FLOAT_EQ(MaxValue(m), 6.0f);
  EXPECT_TRUE(AllClose(ColumnSum(m), Tensor(Shape::Vector(3), {5, 7, 9})));
  EXPECT_TRUE(AllClose(ColumnMean(m), Tensor(Shape::Vector(3), {2.5f, 3.5f, 4.5f})));
  EXPECT_TRUE(AllClose(RowSum(m), Tensor(Shape::Vector(2), {6, 15})));
}

TEST(TensorOpsTest, ColumnVariance) {
  Tensor m(Shape::Matrix(2, 2), {1, 10, 3, 20});
  Tensor mean = ColumnMean(m);
  Tensor var = ColumnVariance(m, mean);
  EXPECT_TRUE(AllClose(var, Tensor(Shape::Vector(2), {1.0f, 25.0f})));
}

TEST(TensorOpsTest, ArgMaxArgMinPerRow) {
  Tensor m(Shape::Matrix(2, 3), {1, 9, 3, 8, 2, 5});
  EXPECT_EQ(ArgMaxPerRow(m), (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(ArgMinPerRow(m), (std::vector<int64_t>{0, 1}));
}

// ---------------------------------------------------------------- Rows

TEST(TensorOpsTest, SliceGatherConcatRow) {
  Tensor m(Shape::Matrix(3, 2), {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(SliceRows(m, 1, 3),
                       Tensor(Shape::Matrix(2, 2), {3, 4, 5, 6})));
  EXPECT_TRUE(AllClose(GatherRows(m, {2, 0}),
                       Tensor(Shape::Matrix(2, 2), {5, 6, 1, 2})));
  EXPECT_TRUE(AllClose(RowAt(m, 1), Tensor(Shape::Vector(2), {3, 4})));
  Tensor c = ConcatRows({SliceRows(m, 0, 1), SliceRows(m, 2, 3)});
  EXPECT_TRUE(AllClose(c, Tensor(Shape::Matrix(2, 2), {1, 2, 5, 6})));
}

TEST(TensorOpsTest, SliceRowsBoundsAreFatal) {
  Tensor m(Shape::Matrix(3, 2));
  EXPECT_DEATH(SliceRows(m, 2, 4), "SliceRows");
  EXPECT_DEATH(GatherRows(m, {3}), "GatherRows");
}

// ---------------------------------------------------------------- Distances

TEST(TensorOpsTest, PairwiseSquaredDistanceMatchesDirect) {
  Rng rng(3);
  Tensor a = Tensor::RandNormal(Shape::Matrix(5, 7), rng);
  Tensor b = Tensor::RandNormal(Shape::Matrix(4, 7), rng);
  Tensor d = PairwiseSquaredDistance(a, b);
  ASSERT_EQ(d.rows(), 5);
  ASSERT_EQ(d.cols(), 4);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(d(i, j), SquaredDistance(RowAt(a, i), RowAt(b, j)), 1e-3f);
    }
  }
}

TEST(TensorOpsTest, PairwiseDistanceIsNonNegative) {
  Rng rng(4);
  Tensor a = Tensor::RandNormal(Shape::Matrix(10, 3), rng, 0.0f, 100.0f);
  Tensor d = PairwiseSquaredDistance(a, a);
  for (int64_t i = 0; i < d.numel(); ++i) EXPECT_GE(d[i], 0.0f);
  for (int64_t i = 0; i < a.rows(); ++i) EXPECT_NEAR(d(i, i), 0.0f, 1e-2f);
}

TEST(TensorOpsTest, RowSquaredNorm) {
  Tensor m(Shape::Matrix(2, 2), {3, 4, 0, 2});
  EXPECT_TRUE(AllClose(RowSquaredNorm(m), Tensor(Shape::Vector(2), {25, 4})));
}

TEST(TensorOpsTest, AllCloseDetectsDifference) {
  Tensor a(Shape::Vector(2), {1.0f, 2.0f});
  Tensor b(Shape::Vector(2), {1.0f, 2.1f});
  EXPECT_FALSE(AllClose(a, b, 1e-3f, 1e-3f));
  EXPECT_TRUE(AllClose(a, b, 0.2f, 0.0f));
  EXPECT_FALSE(AllClose(a, Tensor(Shape::Vector(3))));
}

}  // namespace
}  // namespace pilote
