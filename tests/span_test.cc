// Tests for common/span.h: the release-mode triviality contract, debug
// bounds checking, and the Tensor generation counter that turns a stale
// view into a CHECK failure instead of a silent use-after-free. The
// checked variant (BasicSpan<T, true>) is instantiated directly so every
// check is exercised even when this suite builds with NDEBUG.

#include "common/span.h"

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/ncm_classifier.h"
#include "gtest/gtest.h"
#include "har/sensor_layout.h"
#include "har/window_assembler.h"
#include "tensor/tensor.h"

namespace pilote {
namespace {

using CheckedSpan = BasicSpan<float, true>;
using CheckedConstSpan = BasicSpan<const float, true>;
using RawSpan = BasicSpan<float, false>;

// The release contract is compile-time: pointer+size, trivially copyable.
static_assert(std::is_trivially_copyable_v<RawSpan>);
static_assert(sizeof(RawSpan) == sizeof(float*) + sizeof(size_t));
#ifdef NDEBUG
static_assert(std::is_trivially_copyable_v<Span<float>>,
              "NDEBUG Span must be the raw form");
static_assert(sizeof(Span<float>) == sizeof(float*) + sizeof(size_t),
              "NDEBUG Span must be exactly pointer + size");
#endif

TEST(SpanTest, BasicAccessAndIteration) {
  std::vector<float> buf = {1.0f, 2.0f, 3.0f, 4.0f};
  Span<float> s(buf.data(), buf.size());
  EXPECT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.front(), 1.0f);
  EXPECT_EQ(s.back(), 4.0f);
  float sum = 0.0f;
  for (float v : s) sum += v;
  EXPECT_EQ(sum, 10.0f);
  s[2] = 30.0f;
  EXPECT_EQ(buf[2], 30.0f);
}

TEST(SpanTest, SubspanFirstLast) {
  std::vector<float> buf = {0.0f, 1.0f, 2.0f, 3.0f, 4.0f};
  ConstSpan<float> s(buf.data(), buf.size());
  ConstSpan<float> mid = s.subspan(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0], 1.0f);
  EXPECT_EQ(s.first(2).back(), 1.0f);
  EXPECT_EQ(s.last(2).front(), 3.0f);
}

TEST(SpanTest, MutableConvertsToConst) {
  std::vector<float> buf = {5.0f, 6.0f};
  Span<float> m(buf.data(), buf.size());
  ConstSpan<float> c = m;
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[1], 6.0f);
  CheckedSpan cm(buf.data(), buf.size());
  CheckedConstSpan cc = cm;
  EXPECT_EQ(cc[0], 5.0f);
}

TEST(SpanTest, CheckedBoundsAccessDies) {
  std::vector<float> buf = {1.0f, 2.0f};
  CheckedSpan s(buf.data(), buf.size());
  EXPECT_EQ(s[1], 2.0f);
  EXPECT_DEATH(s[2], "out of bounds");
  EXPECT_DEATH(s.subspan(1, 2), "out of bounds");
  CheckedSpan empty;
  EXPECT_DEATH(empty.back(), "empty span");
}

TEST(SpanTest, TensorSpanViewsElements) {
  Tensor t(Shape::Matrix(2, 3));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  ConstSpan<float> all = static_cast<const Tensor&>(t).span();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[5], 5.0f);
  Span<float> row1 = t.row_span(1);
  ASSERT_EQ(row1.size(), 3u);
  EXPECT_EQ(row1[0], 3.0f);
  row1[2] = 42.0f;
  EXPECT_EQ(t(1, 2), 42.0f);
}

TEST(SpanTest, GenerationBumpsOnReallocOnly) {
  Tensor t(Shape::Matrix(4, 8));
  const uint32_t g0 = t.generation();
  // Shrinking reuses the buffer: no reallocation, no bump.
  t.ResizeRows(2);
  EXPECT_EQ(t.generation(), g0);
  // Growing back within the high-water mark reuses it too.
  t.ResizeRows(4);
  EXPECT_EQ(t.generation(), g0);
  // Growth past capacity reallocates and must invalidate views.
  t.ResizeRows(4096);
  EXPECT_GT(t.generation(), g0);
}

TEST(SpanTest, GenerationBumpsOnAssignment) {
  Tensor t(Shape::Matrix(2, 2));
  Tensor other(Shape::Matrix(3, 3), 1.0f);
  const uint32_t g0 = t.generation();
  t = other;
  EXPECT_GT(t.generation(), g0);
  const uint32_t g1 = t.generation();
  t = Tensor(Shape::Matrix(1, 1));
  EXPECT_GT(t.generation(), g1);
}

TEST(SpanTest, StaleSpanAfterReallocDies) {
  Tensor t(Shape::Matrix(2, 4));
  t.Fill(7.0f);
  CheckedConstSpan view(t.data(), static_cast<size_t>(t.numel()),
                        t.generation_counter(), t.generation());
  EXPECT_EQ(view[3], 7.0f);  // live: reads fine
  t.ResizeRows(4096);        // reallocates -> generation bump
  EXPECT_DEATH(view[0], "stale span");
  EXPECT_DEATH(view.data(), "stale span");
}

TEST(SpanTest, StaleSpanAfterAssignmentDies) {
  Tensor t(Shape::Matrix(2, 2), 3.0f);
  CheckedConstSpan view(t.data(), static_cast<size_t>(t.numel()),
                        t.generation_counter(), t.generation());
  EXPECT_EQ(view[0], 3.0f);
  t = Tensor(Shape::Matrix(2, 2), 9.0f);
  EXPECT_DEATH(view[0], "stale span");
}

TEST(SpanTest, UntrackedCheckedSpanSkipsGenerationCheck) {
  // A checked span over a plain buffer has no generation counter; bounds
  // checks still apply but there is no staleness to validate.
  std::vector<float> buf = {1.0f};
  CheckedSpan s(buf.data(), buf.size());
  EXPECT_EQ(s[0], 1.0f);
  EXPECT_DEATH(s[1], "out of bounds");
}

TEST(SpanTest, CheckedSubspanInheritsGeneration) {
  Tensor t(Shape::Matrix(1, 8), 2.0f);
  CheckedConstSpan view(t.data(), static_cast<size_t>(t.numel()),
                        t.generation_counter(), t.generation());
  CheckedConstSpan tail = view.last(4);
  EXPECT_EQ(tail.captured_generation(), view.captured_generation());
  EXPECT_EQ(tail[0], 2.0f);
  t.ResizeRows(4096);
  EXPECT_DEATH(tail[0], "stale span");
}

TEST(SpanTest, AssemblerPendingSamplesTracksCursor) {
  har::WindowAssembler assembler(/*window_length=*/4,
                                 /*denoise_half_width=*/0);
  EXPECT_TRUE(assembler.pending_samples().empty());
  Tensor sample(Shape::Vector(har::kNumChannels), 0.5f);
  Tensor features;
  ASSERT_FALSE(assembler.Append(sample, &features));
  ConstSpan<float> pending = assembler.pending_samples();
  ASSERT_EQ(pending.size(), static_cast<size_t>(har::kNumChannels));
  EXPECT_EQ(pending[0], 0.5f);
}

TEST(SpanTest, NcmPrototypeViewMatchesPrototype) {
  core::NcmClassifier ncm;
  Tensor proto(Shape::Vector(3));
  proto[0] = 1.0f;
  proto[1] = 2.0f;
  proto[2] = 3.0f;
  ncm.SetPrototype(7, proto);
  ConstSpan<float> view = ncm.prototype_view(7);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[1], 2.0f);
  ConstSpan<float> row = ncm.prototype_row_view(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2], 3.0f);
}

}  // namespace
}  // namespace pilote
