#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/embedding.h"
#include "core/trainer.h"
#include "losses/contrastive.h"
#include "losses/distillation.h"
#include "nn/backbone.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace pilote {
namespace core {
namespace {

nn::BackboneConfig TinyBackbone(int64_t input_dim) {
  nn::BackboneConfig config;
  config.input_dim = input_dim;
  config.hidden_dims = {32};
  config.embedding_dim = 8;
  return config;
}

TrainerOptions FastOptions() {
  TrainerOptions options;
  options.max_epochs = 8;
  options.batch_size = 32;
  options.batches_per_epoch = 10;
  options.margin = 3.0f;
  options.num_val_pairs = 64;
  options.seed = 5;
  return options;
}

TEST(SiameseTrainerTest, SeparatesBlobClasses) {
  Rng rng(1);
  data::Dataset blobs =
      pilote::testing::MakeBlobs({0, 1, 2}, 40, 10, 4.0f, rng);
  nn::MlpBackbone model(TinyBackbone(10), rng);

  losses::PairSampler train_sampler(blobs.features(), blobs.labels(),
                                    losses::PairStrategy::kBalancedRandom, 3);
  losses::PairSampler val_sampler(blobs.features(), blobs.labels(),
                                  losses::PairStrategy::kBalancedRandom, 4);
  SiameseTrainer trainer(model, FastOptions());
  TrainReport report =
      trainer.Train(train_sampler, val_sampler, /*distill=*/nullptr);
  EXPECT_GT(report.epochs_completed, 0);

  // After training, same-class embedding distances should be clearly
  // smaller than cross-class ones.
  Tensor embeddings = EmbedBatched(model, blobs.features());
  double same = 0.0;
  double cross = 0.0;
  int same_count = 0;
  int cross_count = 0;
  for (int64_t i = 0; i < blobs.size(); i += 7) {
    for (int64_t j = i + 1; j < blobs.size(); j += 7) {
      const float d =
          SquaredDistance(RowAt(embeddings, i), RowAt(embeddings, j));
      if (blobs.label(i) == blobs.label(j)) {
        same += d;
        ++same_count;
      } else {
        cross += d;
        ++cross_count;
      }
    }
  }
  ASSERT_GT(same_count, 0);
  ASSERT_GT(cross_count, 0);
  EXPECT_LT(same / same_count, 0.5 * cross / cross_count);
}

TEST(SiameseTrainerTest, TrainingReducesValidationLoss) {
  Rng rng(2);
  data::Dataset blobs = pilote::testing::MakeBlobs({0, 1}, 50, 8, 3.0f, rng);
  nn::MlpBackbone model(TinyBackbone(8), rng);
  losses::PairSampler train_sampler(blobs.features(), blobs.labels(),
                                    losses::PairStrategy::kBalancedRandom, 5);
  losses::PairSampler val_sampler(blobs.features(), blobs.labels(),
                                  losses::PairStrategy::kBalancedRandom, 6);
  SiameseTrainer trainer(model, FastOptions());
  TrainReport report = trainer.Train(train_sampler, val_sampler, nullptr);
  ASSERT_GE(report.val_loss_history.size(), 2u);
  EXPECT_LT(report.val_loss_history.back(),
            report.val_loss_history.front());
}

TEST(SiameseTrainerTest, EarlyStoppingTriggersOnPlateau) {
  Rng rng(3);
  // A single tight blob: the contrastive loss with only positive pairs
  // collapses quickly and plateaus.
  data::Dataset blobs =
      pilote::testing::MakeBlobs({0, 1}, 30, 6, 0.0f, rng, 0.01f);
  nn::MlpBackbone model(TinyBackbone(6), rng);
  TrainerOptions options = FastOptions();
  options.max_epochs = 60;
  options.early_stop_delta = 0.05f;  // generous plateau threshold
  options.early_stop_patience = 3;
  losses::PairSampler train_sampler(blobs.features(), blobs.labels(),
                                    losses::PairStrategy::kBalancedRandom, 7);
  losses::PairSampler val_sampler(blobs.features(), blobs.labels(),
                                  losses::PairStrategy::kBalancedRandom, 8);
  SiameseTrainer trainer(model, options);
  TrainReport report = trainer.Train(train_sampler, val_sampler, nullptr);
  EXPECT_TRUE(report.early_stopped);
  EXPECT_LT(report.epochs_completed, options.max_epochs);
}

TEST(SiameseTrainerTest, ReportTimingsArePopulated) {
  Rng rng(4);
  data::Dataset blobs = pilote::testing::MakeBlobs({0, 1}, 20, 6, 3.0f, rng);
  nn::MlpBackbone model(TinyBackbone(6), rng);
  TrainerOptions options = FastOptions();
  options.max_epochs = 2;
  losses::PairSampler train_sampler(blobs.features(), blobs.labels(),
                                    losses::PairStrategy::kBalancedRandom, 9);
  losses::PairSampler val_sampler(blobs.features(), blobs.labels(),
                                  losses::PairStrategy::kBalancedRandom, 10);
  SiameseTrainer trainer(model, options);
  TrainReport report = trainer.Train(train_sampler, val_sampler, nullptr);
  EXPECT_EQ(report.epochs_completed, 2);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.mean_epoch_seconds, 0.0);
  EXPECT_EQ(report.val_loss_history.size(), 2u);
}

TEST(SiameseTrainerTest, DistillationAnchorsOldEmbeddings) {
  Rng rng(5);
  // Old classes 0/1; new class 5 far away.
  data::Dataset old_data =
      pilote::testing::MakeBlobs({0, 1}, 30, 8, 4.0f, rng);
  data::Dataset new_data = pilote::testing::MakeBlobs({5}, 20, 8, 4.0f, rng);

  // Two identical models trained identically except for distillation.
  auto run = [&](bool with_distill) {
    Rng model_rng(42);
    nn::MlpBackbone model(TinyBackbone(8), model_rng);
    Tensor teacher = EmbedBatched(model, old_data.features());

    losses::PairSampler train_sampler(
        old_data.features(), old_data.labels(), new_data.features(),
        new_data.labels(), losses::PairStrategy::kCrossAndNew, 11);
    losses::PairSampler val_sampler(
        old_data.features(), old_data.labels(), new_data.features(),
        new_data.labels(), losses::PairStrategy::kCrossAndNew, 12);

    DistillationTask distill;
    distill.features = old_data.features();
    distill.teacher_embeddings = teacher;
    distill.alpha = 0.5f;
    distill.batch_size = 32;

    SiameseTrainer trainer(model, FastOptions());
    trainer.Train(train_sampler, val_sampler,
                  with_distill ? &distill : nullptr);
    // Drift of the old-class embeddings from the teacher.
    Tensor student = EmbedBatched(model, old_data.features());
    return losses::DistillationLossValue(student, teacher);
  };

  const float drift_with = run(true);
  const float drift_without = run(false);
  EXPECT_LT(drift_with, drift_without);
}

TEST(SiameseTrainerTest, MismatchedDistillationSizesAreFatal) {
  Rng rng(6);
  nn::MlpBackbone model(TinyBackbone(4), rng);
  data::Dataset blobs = pilote::testing::MakeBlobs({0, 1}, 10, 4, 2.0f, rng);
  losses::PairSampler sampler(blobs.features(), blobs.labels(),
                              losses::PairStrategy::kBalancedRandom, 1);
  DistillationTask distill;
  distill.features = Tensor(Shape::Matrix(4, 4));
  distill.teacher_embeddings = Tensor(Shape::Matrix(3, 8));
  SiameseTrainer trainer(model, FastOptions());
  EXPECT_DEATH(trainer.Train(sampler, sampler, &distill), "CHECK failed");
}

}  // namespace
}  // namespace core
}  // namespace pilote
