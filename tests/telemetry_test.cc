// Streaming-telemetry-plane tests: labeled metric families, the windowed
// aggregator, the slow-window exemplar ring, the stall watchdog, and the
// background TelemetryExporter running concurrently with serving ingest
// (the suite CI runs under TSan). The end-to-end test is the acceptance
// drill: exporter thread + multi-threaded ingest + an injected-slow
// predict failpoint, asserting windowed p999, stage/end-to-end latency
// consistency, a captured exemplar, and a watchdog stall event.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/cloud.h"
#include "nn/backbone.h"
#include "obs/exemplar.h"
#include "obs/export.h"
#include "obs/exporter.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/window.h"
#include "serialize/io.h"
#include "serve/session_manager.h"
#include "tensor/tensor.h"

namespace pilote {
namespace obs {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTesting();
    FamilyRegistry::Global().ResetForTesting();
    SlowWindows().ResetForTesting();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    MetricsRegistry::Global().ResetForTesting();
    FamilyRegistry::Global().ResetForTesting();
    SlowWindows().ResetForTesting();
  }
};

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  std::string body;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    body.append(buffer, n);
  }
  std::fclose(f);
  return body;
}

// ------------------------------------------------------- metric families

TEST_F(TelemetryTest, FamilySlotsAreSharedAcrossRegistrations) {
  CounterFamily a = FamilyRegistry::Global().GetCounterFamily(
      "test/family_total", "reason", {"x", "y"});
  // A second site registering an overlapping value subset sees the same
  // underlying slots, in ITS requested order.
  CounterFamily b = FamilyRegistry::Global().GetCounterFamily(
      "test/family_total", "reason", {"y", "z"});
  a.At(1).Add(4);  // reason=y through site a
  EXPECT_EQ(b.At(0).value(), 4);  // reason=y through site b
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 2u);
}

TEST_F(TelemetryTest, FamilySamplesCarryRenderedLabels) {
  GaugeFamily shard = FamilyRegistry::Global().GetGaugeFamily(
      "test/shard_sessions", "shard", {"0", "1"});
  shard.At(0).Set(2.0);
  shard.At(1).Set(7.0);
  MetricsSnapshot snapshot;
  FamilyRegistry::Global().AppendTo(&snapshot);
  ASSERT_EQ(snapshot.gauges.size(), 2u);
  EXPECT_EQ(snapshot.gauges[0].name, "test/shard_sessions");
  EXPECT_EQ(snapshot.gauges[0].labels, "shard=\"0\"");
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 2.0);
  EXPECT_EQ(snapshot.gauges[1].labels, "shard=\"1\"");
}

TEST_F(TelemetryTest, RenderLabelEscapesQuotesAndBackslashes) {
  EXPECT_EQ(RenderLabel("k", "plain"), "k=\"plain\"");
  EXPECT_EQ(RenderLabel("k", "a\"b\\c"), "k=\"a\\\"b\\\\c\"");
}

TEST_F(TelemetryTest, FamilyResetZeroesInPlaceAndViewsSurvive) {
  HistogramFamily stage = FamilyRegistry::Global().GetHistogramFamily(
      "test/stage_ms", "stage", {"predict"});
  stage.At(0).Record(1.0);
  FamilyRegistry::Global().ResetForTesting();
  EXPECT_EQ(stage.At(0).Snapshot().count, 0);
  stage.At(0).Record(2.0);
  EXPECT_EQ(stage.At(0).Snapshot().count, 1);
}

// --------------------------------------------------- windowed aggregation

TEST_F(TelemetryTest, AggregatorComputesRollingRatesAndDeltas) {
  Counter& events = MetricsRegistry::Global().GetCounter("test/events_total");
  Histogram& lat = MetricsRegistry::Global().GetHistogram("test/lat_ms");
  WindowedAggregator agg(/*capacity=*/16);

  events.Add(10);
  lat.Record(1.0);
  agg.Tick(MetricsRegistry::Global().RawSnapshot(), 0.0);  // baseline

  events.Add(30);
  lat.Record(2.0);
  lat.Record(4.0);
  agg.Tick(MetricsRegistry::Global().RawSnapshot(), 2.0);

  // The last tick covers 2 seconds with 30 events and 2 recordings.
  EXPECT_DOUBLE_EQ(agg.WindowedRate("test/events_total", "", 1), 15.0);
  HistogramSnapshot window = agg.WindowedHistogram("test/lat_ms", "", 1);
  EXPECT_EQ(window.count, 2);
  EXPECT_DOUBLE_EQ(window.sum, 6.0);
  // Merging back to the baseline recovers the full cumulative state.
  EXPECT_EQ(agg.WindowedHistogram("test/lat_ms", "", 99).count, 3);

  WindowSummary summary = agg.Summarize(1);
  EXPECT_DOUBLE_EQ(summary.window_seconds, 2.0);
  ASSERT_EQ(summary.counters.size(), 1u);
  EXPECT_EQ(summary.counters[0].name, "test/events_total");
  EXPECT_EQ(summary.counters[0].delta, 30);
  EXPECT_DOUBLE_EQ(summary.counters[0].rate_per_s, 15.0);
  ASSERT_EQ(summary.histograms.size(), 1u);
  EXPECT_EQ(summary.histograms[0].count, 2);
  EXPECT_GT(summary.histograms[0].p999, 0.0);
}

TEST_F(TelemetryTest, AggregatorEvictsBeyondCapacityAndResets) {
  Counter& events = MetricsRegistry::Global().GetCounter("test/events_total");
  WindowedAggregator agg(/*capacity=*/2);
  for (int t = 0; t < 5; ++t) {
    events.Add(1);
    agg.Tick(MetricsRegistry::Global().RawSnapshot(),
             static_cast<double>(t));
  }
  EXPECT_EQ(agg.tick_count(), 2u);
  // Only the retained ticks contribute, however many are asked for.
  EXPECT_EQ(agg.Summarize(99).counters[0].delta, 2);
  agg.Reset();
  EXPECT_EQ(agg.tick_count(), 0u);
  // After Reset the next tick re-baselines instead of producing a bogus
  // delta against pre-reset cumulative state.
  agg.Tick(MetricsRegistry::Global().RawSnapshot(), 10.0);
  EXPECT_EQ(agg.Summarize(99).counters[0].delta, 5);
}

TEST_F(TelemetryTest, MergeHistogramsSumsBucketsAndWidensRange) {
  Histogram& a = MetricsRegistry::Global().GetHistogram("test/merge_a");
  Histogram& b = MetricsRegistry::Global().GetHistogram("test/merge_b");
  a.Record(1.0);
  b.Record(8.0);
  b.Record(16.0);
  HistogramSnapshot merged = MergeHistograms(a.Snapshot(), b.Snapshot());
  EXPECT_EQ(merged.count, 3);
  EXPECT_DOUBLE_EQ(merged.sum, 25.0);
  EXPECT_DOUBLE_EQ(merged.min, 1.0);
  EXPECT_DOUBLE_EQ(merged.max, 16.0);
  // Merging with an empty side is the identity.
  HistogramSnapshot empty;
  EXPECT_EQ(MergeHistograms(merged, empty).count, 3);
  EXPECT_EQ(MergeHistograms(empty, merged).count, 3);
}

// -------------------------------------------------------- exemplar ring

TEST_F(TelemetryTest, ExemplarRingOverwritesOldestAndCountsRecords) {
  ExemplarRing ring(/*capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) {
    SlowWindowExemplar e;
    e.session_id = i;
    e.total_ms = static_cast<double>(i);
    ring.Record(e);
  }
  EXPECT_EQ(ring.recorded(), 6);
  std::vector<SlowWindowExemplar> snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  // The surviving slots are the four most recent captures (sequence 2..5).
  for (const SlowWindowExemplar& e : snapshot) {
    EXPECT_GE(e.sequence, 2u);
    EXPECT_LE(e.sequence, 5u);
    EXPECT_EQ(e.session_id, e.sequence);
  }
  ring.ResetForTesting();
  EXPECT_EQ(ring.recorded(), 0);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST_F(TelemetryTest, ExemplarRingIsSafeUnderConcurrentRecordAndSnapshot) {
  ExemplarRing ring(/*capacity=*/8);
  std::atomic<bool> stop{false};
  std::thread reader([&stop, &ring] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const SlowWindowExemplar& e : ring.Snapshot()) {
        // Every writer records stages summing to total_ms; a torn slot
        // that slipped past the seqlock would break the sum.
        EXPECT_DOUBLE_EQ(
            e.total_ms, e.queue_wait_ms + e.batch_wait_ms + e.predict_ms);
        EXPECT_EQ(e.session_id, static_cast<uint64_t>(e.total_ms));
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, t] {
      for (int i = 0; i < 2000; ++i) {
        const double stage = static_cast<double>(t * 2000 + i);
        SlowWindowExemplar e;
        e.session_id = static_cast<uint64_t>(3.0 * stage);
        e.queue_wait_ms = stage;
        e.batch_wait_ms = stage;
        e.predict_ms = stage;
        e.total_ms = 3.0 * stage;
        ring.Record(e);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(ring.recorded(), 0);
  EXPECT_LE(ring.Snapshot().size(), ring.capacity());
}

// ------------------------------------------------------------- exporter

TEST_F(TelemetryTest, TickNowWritesPromAndJsonlArtifacts) {
  MetricsRegistry::Global().GetCounter("test/events_total").Add(5);
  MetricsRegistry::Global().GetHistogram("test/lat_ms").Record(3.0);

  TelemetryOptions options;
  options.output_prefix = ::testing::TempDir() + "/telemetry_ticknow";
  options.interval_ms = 60000;  // never fires on its own; ticks are manual
  options.summary_window_ticks = 1;  // each JSONL line covers one tick
  std::remove((options.output_prefix + ".jsonl").c_str());
  TelemetryExporter exporter(options);
  ASSERT_TRUE(exporter.TickNow().ok());
  MetricsRegistry::Global().GetCounter("test/events_total").Add(7);
  ASSERT_TRUE(exporter.TickNow().ok());
  EXPECT_EQ(exporter.ticks_completed(), 2);
  EXPECT_EQ(exporter.windows().tick_count(), 2u);

  const std::string prom = ReadFileOrEmpty(options.output_prefix + ".prom");
  EXPECT_NE(prom.find("pilote_test_events_total 12"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.999\""), std::string::npos);

  // JSONL appends one record per tick; the second tick's windowed counter
  // delta is exactly the 7 events recorded in between.
  const std::string jsonl = ReadFileOrEmpty(options.output_prefix + ".jsonl");
  ASSERT_FALSE(jsonl.empty());
  const size_t lines =
      static_cast<size_t>(std::count(jsonl.begin(), jsonl.end(), '\n'));
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"tick\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"test/events_total\":{\"delta\":7"),
            std::string::npos);
}

TEST_F(TelemetryTest, GlobalTelemetryIsExclusiveAndRestartable) {
  TelemetryOptions options;
  options.output_prefix = ::testing::TempDir() + "/telemetry_global";
  options.interval_ms = 50;
  ASSERT_EQ(GlobalTelemetry(), nullptr);
  ASSERT_TRUE(StartGlobalTelemetry(options).ok());
  EXPECT_NE(GlobalTelemetry(), nullptr);
  Status second = StartGlobalTelemetry(options);
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  StopGlobalTelemetry();
  EXPECT_EQ(GlobalTelemetry(), nullptr);
  ASSERT_TRUE(StartGlobalTelemetry(options).ok());
  StopGlobalTelemetry();
}

// ------------------------------------------------- serving integration

core::CloudArtifact MakeTestArtifact(const core::PiloteConfig& config) {
  Rng rng(4242);
  nn::MlpBackbone model(config.backbone, rng);
  core::CloudArtifact artifact;
  artifact.backbone_config = config.backbone;
  artifact.model_payload = serialize::SerializeModuleToString(model);
  const int64_t input_dim = config.backbone.input_dim;
  artifact.scaler.Fit(Tensor::RandNormal(Shape::Matrix(64, input_dim), rng));
  for (int label = 0; label < 4; ++label) {
    Tensor exemplars =
        Tensor::RandNormal(Shape::Matrix(8, input_dim), rng,
                           /*mean=*/static_cast<float>(2 * label), 0.25f);
    artifact.support.SetClassExemplars(label,
                                       artifact.scaler.Transform(exemplars));
    artifact.old_classes.push_back(label);
  }
  return artifact;
}

std::shared_ptr<serve::LearnerHandle> MakeHandle(
    const core::PiloteConfig& config) {
  Result<std::shared_ptr<serve::LearnerHandle>> handle =
      serve::LearnerHandle::Create("pretrained", MakeTestArtifact(config),
                                   config);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  return handle.value();
}

// The acceptance drill: exporter thread ticking at 5ms while three ingest
// threads push windows through the batching engine and a failpoint makes
// every 7th predict transiently fail (retried after a 3ms backoff, so the
// affected flushes define the latency tail).
TEST_F(TelemetryTest, ExporterRunsConcurrentlyWithServingIngest) {
  fail::ScopedFailpoints failpoints;
  ASSERT_TRUE(fail::FailpointRegistry::Global()
                  .Arm("serve/predict",
                       fail::FailpointSpec::EveryNth(
                           7, StatusCode::kUnavailable))
                  .ok());

  TelemetryOptions telemetry;
  telemetry.output_prefix = ::testing::TempDir() + "/telemetry_e2e";
  telemetry.interval_ms = 5;
  telemetry.window_capacity_ticks = 4096;
  telemetry.summary_window_ticks = 4096;
  std::remove((telemetry.output_prefix + ".jsonl").c_str());
  TelemetryExporter exporter(telemetry);
  ASSERT_TRUE(exporter.Start().ok());

  const core::PiloteConfig config = core::PiloteConfig::Small();
  serve::ServeOptions options;
  options.max_batch = 4;
  options.max_delay_us = 500;
  options.queue_capacity = 256;
  options.predict_retries = 2;
  options.retry_backoff_us = 3000;
  options.watchdog_poll_ms = 2;  // polling thread runs during ingest
  options.watchdog_stall_after_ms = 10000;  // but never fires here
  constexpr int kThreads = 3;
  constexpr int kSessions = 4;
  constexpr int kWindowsPerThread = 60;
  std::atomic<int64_t> classified{0};
  {
    serve::SessionManager manager(options);
    std::shared_ptr<serve::LearnerHandle> handle = MakeHandle(config);
    std::vector<serve::SessionId> ids;
    for (int s = 0; s < kSessions; ++s) {
      Result<serve::SessionId> id =
          manager.CreateSession(handle, config.streaming);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids.push_back(*id);
    }

    std::vector<std::thread> ingest;
    for (int t = 0; t < kThreads; ++t) {
      ingest.emplace_back([&manager, &ids, &config, &classified, t] {
        Rng rng(100 + t);
        std::vector<std::future<int>> futures;
        for (int w = 0; w < kWindowsPerThread; ++w) {
          const Tensor window = Tensor::RandNormal(
              Shape::Matrix(1, config.backbone.input_dim), rng);
          while (true) {
            Result<std::future<int>> f = manager.SubmitWindow(
                ids[static_cast<size_t>((t + w) % kSessions)], window);
            if (f.ok()) {
              futures.push_back(std::move(f).value());
              break;
            }
            ASSERT_EQ(f.status().code(), StatusCode::kResourceExhausted);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
        for (std::future<int>& f : futures) {
          f.get();
          classified.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& thread : ingest) thread.join();
    EXPECT_EQ(manager.watchdog().stalls_detected(), 0);
  }
  exporter.Stop();
  ASSERT_GE(exporter.ticks_completed(), 1);
  const int64_t total = classified.load(std::memory_order_relaxed);
  ASSERT_EQ(total, kThreads * kWindowsPerThread);

  // Windowed tail latency is present: the aggregator retained every tick,
  // so the full window recovers all requests and a positive p999.
  HistogramSnapshot windowed =
      exporter.windows().WindowedHistogram("serve/request_ms", "", 4096);
  EXPECT_EQ(windowed.count, total);
  WindowSummary summary = exporter.windows().Summarize(4096);
  bool found_request_ms = false;
  for (const HistogramSample& h : summary.histograms) {
    if (h.name == "serve/request_ms" && h.labels.empty()) {
      found_request_ms = true;
      EXPECT_EQ(h.count, total);
      EXPECT_GT(h.p999, 0.0);
      EXPECT_GE(h.p999, h.p99);
      EXPECT_LE(h.p999, h.max);
    }
  }
  EXPECT_TRUE(found_request_ms);

  // Per-stage histograms are sum-consistent with the end-to-end latency:
  // every successful request recorded all three stages, and
  // queue_wait + batch_wait + predict <= request_ms request by request
  // (the stage clock stops at predict_end, the request clock after
  // completion), so the sums obey the same bound.
  HistogramFamily stage_ms = FamilyRegistry::Global().GetHistogramFamily(
      "serve/stage_ms", "stage", {"queue_wait", "batch_wait", "predict"});
  const HistogramSnapshot request =
      MetricsRegistry::Global().GetHistogram("serve/request_ms").Snapshot();
  ASSERT_EQ(request.count, total);
  double stage_sum = 0.0;
  for (size_t s = 0; s < 3; ++s) {
    const HistogramSnapshot snap = stage_ms.At(s).Snapshot();
    EXPECT_EQ(snap.count, total) << "stage slot " << s;
    stage_sum += snap.sum;
  }
  EXPECT_GT(stage_sum, 0.0);
  EXPECT_LE(stage_sum, request.sum * 1.0001 + 0.01);

  // At least one slow-window exemplar was captured for the injected-slow
  // flushes: the 3ms retry backoff dominates the tail, so the slowest
  // captured window carries it.
  EXPECT_GE(SlowWindows().recorded(), 1);
  std::vector<SlowWindowExemplar> exemplars = SlowWindows().Snapshot();
  ASSERT_FALSE(exemplars.empty());
  double slowest_ms = 0.0;
  for (const SlowWindowExemplar& e : exemplars) {
    EXPECT_GE(e.total_ms,
              e.queue_wait_ms + e.batch_wait_ms + e.predict_ms - 1e-6);
    slowest_ms = std::max(slowest_ms, e.total_ms);
  }
  EXPECT_GE(slowest_ms, 2.5);

  // Artifacts: the exposition carries the windowed tail quantile and the
  // failpoint stats; the JSONL stream carries the exemplars.
  const std::string prom =
      ReadFileOrEmpty(telemetry.output_prefix + ".prom");
  EXPECT_NE(prom.find("pilote_serve_request_ms{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("pilote_failpoint_fires_total{name=\"serve/predict\"}"),
            std::string::npos);
  const std::string jsonl =
      ReadFileOrEmpty(telemetry.output_prefix + ".jsonl");
  EXPECT_NE(jsonl.find("\"exemplars\":[{\"sequence\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"serve/request_ms\""), std::string::npos);
}

// ------------------------------------------------------------- watchdog

TEST_F(TelemetryTest, WatchdogDetectsFlushStaleUnderStuckPredict) {
  fail::ScopedFailpoints failpoints;
  // Every predict fails; with a generous retry budget and exponential
  // backoff the worker wedges inside one flush while windows queue behind
  // it — exactly the flush-stale signature.
  ASSERT_TRUE(fail::FailpointRegistry::Global()
                  .Arm("serve/predict", fail::FailpointSpec::Always(
                                            StatusCode::kUnavailable))
                  .ok());

  const core::PiloteConfig config = core::PiloteConfig::Small();
  serve::ServeOptions options;
  options.max_batch = 1;  // one window per flush keeps the queue non-empty
  options.max_delay_us = 0;
  options.predict_retries = 4;
  options.retry_backoff_us = 20000;  // 20+40+80+160ms: ~300ms wedged/flush
  options.watchdog_poll_ms = 0;      // polled deterministically below
  options.watchdog_stall_after_ms = 40;
  serve::SessionManager manager(options);
  std::shared_ptr<serve::LearnerHandle> handle = MakeHandle(config);
  Result<serve::SessionId> id =
      manager.CreateSession(handle, config.streaming);
  ASSERT_TRUE(id.ok());

  Rng rng(7);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 3; ++i) {
    Result<std::future<int>> f = manager.SubmitWindow(
        *id, Tensor::RandNormal(Shape::Matrix(1, config.backbone.input_dim),
                                rng));
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    futures.push_back(std::move(f).value());
  }

  serve::Watchdog& watchdog = manager.watchdog();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (watchdog.stalls_detected() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    watchdog.PollOnceForTesting();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(watchdog.stalls_detected(), 1) << "no stall detected in 20s";
  bool found = false;
  for (const serve::StallEvent& event : watchdog.Events()) {
    if (event.reason == serve::StallEvent::Reason::kFlushStale) {
      found = true;
      EXPECT_GE(event.queue_depth, 1);
      EXPECT_GE(event.flush_age_ms, 40.0);
    }
  }
  EXPECT_TRUE(found);
  // The structured event is mirrored into the labeled stall counter.
  CounterFamily stalls = FamilyRegistry::Global().GetCounterFamily(
      "serve/stalls_total", "reason", {"flush_stale"});
  EXPECT_GE(stalls.At(0).value(), 1);

  // All requests eventually complete (degraded) once the retry budget
  // drains; the manager then shuts down cleanly.
  for (std::future<int>& f : futures) f.get();
}

TEST_F(TelemetryTest, WatchdogDetectsQueueWatermarkOnBacklog) {
  const core::PiloteConfig config = core::PiloteConfig::Small();
  serve::ServeOptions options;
  options.queue_capacity = 8;
  options.watchdog_queue_watermark = 0.5;
  options.watchdog_poll_ms = 0;
  serve::SessionManager manager(options);
  std::shared_ptr<serve::LearnerHandle> handle = MakeHandle(config);
  Result<serve::SessionId> id =
      manager.CreateSession(handle, config.streaming);
  ASSERT_TRUE(id.ok());

  manager.engine().PauseForTesting();
  Rng rng(9);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 5; ++i) {
    Result<std::future<int>> f = manager.SubmitWindow(
        *id, Tensor::RandNormal(Shape::Matrix(1, config.backbone.input_dim),
                                rng));
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(f).value());
  }

  serve::Watchdog& watchdog = manager.watchdog();
  watchdog.PollOnceForTesting();
  watchdog.PollOnceForTesting();  // edge-triggered: no second event
  std::vector<serve::StallEvent> events = watchdog.Events();
  size_t watermark_events = 0;
  for (const serve::StallEvent& event : events) {
    if (event.reason == serve::StallEvent::Reason::kQueueWatermark) {
      ++watermark_events;
      EXPECT_GE(event.queue_depth, 4);
    }
  }
  EXPECT_EQ(watermark_events, 1u);

  manager.engine().ResumeForTesting();
  for (std::future<int>& f : futures) f.get();
  // Once the backlog drains, the episode ends and a fresh backlog would be
  // a new event; an immediate poll on the empty queue emits nothing.
  watchdog.PollOnceForTesting();
  EXPECT_EQ(watchdog.Events().size(), events.size());
}

}  // namespace
}  // namespace obs
}  // namespace pilote
