#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "losses/contrastive.h"
#include "losses/distillation.h"
#include "losses/joint.h"
#include "losses/pair_sampler.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

namespace ag = autograd;

// ---------------------------------------------------------------- Contrastive

TEST(ContrastiveLossTest, PositivePairPenalizesDistance) {
  // One positive pair at squared distance 4 -> loss 4.
  Tensor left(Shape::Matrix(1, 2), {0.0f, 0.0f});
  Tensor right(Shape::Matrix(1, 2), {2.0f, 0.0f});
  Tensor y(Shape::Vector(1), {1.0f});
  EXPECT_NEAR(losses::ContrastiveLossValue(left, right, y, 5.0f), 4.0f, 1e-5f);
}

TEST(ContrastiveLossTest, NegativePairBeyondMarginIsFree) {
  Tensor left(Shape::Matrix(1, 2), {0.0f, 0.0f});
  Tensor right(Shape::Matrix(1, 2), {10.0f, 0.0f});
  Tensor y(Shape::Vector(1), {0.0f});
  EXPECT_NEAR(losses::ContrastiveLossValue(left, right, y, 5.0f), 0.0f, 1e-5f);
}

TEST(ContrastiveLossTest, NegativePairInsideMarginPenalized) {
  // d^2 = 9, m^2 = 25 -> hinge 16.
  Tensor left(Shape::Matrix(1, 2), {0.0f, 0.0f});
  Tensor right(Shape::Matrix(1, 2), {3.0f, 0.0f});
  Tensor y(Shape::Vector(1), {0.0f});
  EXPECT_NEAR(losses::ContrastiveLossValue(left, right, y, 5.0f), 16.0f,
              1e-4f);
}

TEST(ContrastiveLossTest, BatchIsAveraged) {
  Tensor left(Shape::Matrix(2, 1), {0.0f, 0.0f});
  Tensor right(Shape::Matrix(2, 1), {2.0f, 3.0f});
  Tensor y(Shape::Vector(2), {1.0f, 0.0f});
  // pair 0: pos d2=4 -> 4 ; pair 1: neg d2=9, m2=25 -> 16 ; mean = 10.
  EXPECT_NEAR(losses::ContrastiveLossValue(left, right, y, 5.0f), 10.0f,
              1e-4f);
}

TEST(ContrastiveLossTest, AutogradValueMatchesPlainValue) {
  Rng rng(1);
  Tensor left = Tensor::RandNormal(Shape::Matrix(8, 4), rng);
  Tensor right = Tensor::RandNormal(Shape::Matrix(8, 4), rng);
  Tensor y(Shape::Vector(8));
  for (int i = 0; i < 8; ++i) y[i] = (i % 2 == 0) ? 1.0f : 0.0f;
  ag::Variable loss = losses::ContrastiveLoss(
      ag::Variable::Parameter(left), ag::Variable::Parameter(right), y, 2.0f);
  EXPECT_NEAR(loss.value()[0],
              losses::ContrastiveLossValue(left, right, y, 2.0f), 1e-4f);
}

TEST(ContrastiveLossTest, GradientPullsPositivesTogether) {
  // Gradient of a positive pair should move `left` toward `right`.
  ag::Variable left =
      ag::Variable::Parameter(Tensor(Shape::Matrix(1, 2), {0.0f, 0.0f}));
  ag::Variable right =
      ag::Variable::Constant(Tensor(Shape::Matrix(1, 2), {2.0f, 0.0f}));
  Tensor y(Shape::Vector(1), {1.0f});
  losses::ContrastiveLoss(left, right, y, 5.0f).Backward();
  // d loss / d left_x = 2 * (left_x - right_x) = -4: descending increases x.
  EXPECT_NEAR(left.grad()(0, 0), -4.0f, 1e-4f);
}

TEST(ContrastiveLossTest, GradientPushesCloseNegativesApart) {
  ag::Variable left =
      ag::Variable::Parameter(Tensor(Shape::Matrix(1, 2), {1.0f, 0.0f}));
  ag::Variable right =
      ag::Variable::Constant(Tensor(Shape::Matrix(1, 2), {0.0f, 0.0f}));
  Tensor y(Shape::Vector(1), {0.0f});
  losses::ContrastiveLoss(left, right, y, 5.0f).Backward();
  // Inside the margin: gradient on left_x is -2*(left-right) = -2;
  // descending moves left_x to larger values, away from right.
  EXPECT_LT(left.grad()(0, 0), 0.0f);
}

TEST(ContrastiveLossTest, NonBinarySimilarityIsFatal) {
  Tensor left(Shape::Matrix(1, 2));
  Tensor right(Shape::Matrix(1, 2));
  Tensor y(Shape::Vector(1), {0.5f});
  EXPECT_DEATH(losses::ContrastiveLoss(ag::Variable::Constant(left),
                                       ag::Variable::Constant(right), y, 1.0f),
               "similar must be 0/1");
}

TEST(ContrastiveLossTest, HadsellFormKnownValues) {
  // d = 3, m = 5 -> hinge (5 - 3)^2 = 4 for a negative pair.
  Tensor left(Shape::Matrix(1, 2), {0.0f, 0.0f});
  Tensor right(Shape::Matrix(1, 2), {3.0f, 0.0f});
  Tensor y(Shape::Vector(1), {0.0f});
  EXPECT_NEAR(losses::ContrastiveLossValue(left, right, y, 5.0f,
                                           losses::ContrastiveForm::kHadsell),
              4.0f, 1e-4f);
  // Positive pairs are identical under both forms.
  Tensor y_pos(Shape::Vector(1), {1.0f});
  EXPECT_NEAR(losses::ContrastiveLossValue(left, right, y_pos, 5.0f,
                                           losses::ContrastiveForm::kHadsell),
              9.0f, 1e-4f);
}

TEST(ContrastiveLossTest, SquaredHingeGradientVanishesAtCollapse) {
  // A negative pair with identical embeddings: Eq. 2's gradient is zero
  // (the deadlock motivating the Hadsell option), while the Hadsell form
  // still repels.
  Tensor same(Shape::Matrix(1, 2), {1.0f, 1.0f});
  Tensor y(Shape::Vector(1), {0.0f});

  ag::Variable left_sq = ag::Variable::Parameter(same);
  losses::ContrastiveLoss(left_sq, ag::Variable::Constant(same), y, 5.0f,
                          losses::ContrastiveForm::kSquaredHinge)
      .Backward();
  EXPECT_NEAR(left_sq.grad()(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(left_sq.grad()(0, 1), 0.0f, 1e-6f);

  ag::Variable left_h = ag::Variable::Parameter(same);
  losses::ContrastiveLoss(left_h, ag::Variable::Constant(same), y, 5.0f,
                          losses::ContrastiveForm::kHadsell)
      .Backward();
  // Finite (possibly huge) repulsion magnitude; direction is arbitrary
  // at the exact collapse point, but the gradient must be non-zero for a
  // nearly-collapsed pair:
  Tensor nudged(Shape::Matrix(1, 2), {1.001f, 1.0f});
  ag::Variable left_near = ag::Variable::Parameter(nudged);
  losses::ContrastiveLoss(left_near, ag::Variable::Constant(same), y, 5.0f,
                          losses::ContrastiveForm::kHadsell)
      .Backward();
  EXPECT_GT(std::fabs(left_near.grad()(0, 0)), 1.0f);
}

TEST(ContrastiveLossTest, HadsellGradCheckAwayFromCollapse) {
  Rng rng(21);
  Tensor left_t = Tensor::RandNormal(Shape::Matrix(6, 3), rng);
  Tensor right_t = Tensor::RandNormal(Shape::Matrix(6, 3), rng);
  Tensor y(Shape::Vector(6));
  for (int i = 0; i < 6; ++i) y[i] = (i % 2 == 0) ? 1.0f : 0.0f;

  ag::Variable left = ag::Variable::Parameter(left_t);
  ag::Variable loss = losses::ContrastiveLoss(
      left, ag::Variable::Constant(right_t), y, 2.0f,
      losses::ContrastiveForm::kHadsell);
  loss.Backward();
  const Tensor analytic = left.grad();
  const float eps = 1e-3f;
  for (int64_t i = 0; i < left_t.numel(); ++i) {
    Tensor& v = left.mutable_value();
    const float original = v[i];
    v[i] = original + eps;
    const float plus = losses::ContrastiveLossValue(
        v, right_t, y, 2.0f, losses::ContrastiveForm::kHadsell);
    v[i] = original - eps;
    const float minus = losses::ContrastiveLossValue(
        v, right_t, y, 2.0f, losses::ContrastiveForm::kHadsell);
    v[i] = original;
    const float numeric = (plus - minus) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric,
                2e-2f * std::max(1.0f, std::fabs(numeric)));
  }
}

// Margin monotonicity: a larger margin can only increase the loss of
// negative pairs.
class ContrastiveMarginTest : public ::testing::TestWithParam<float> {};

TEST_P(ContrastiveMarginTest, NegativeLossNondecreasingInMargin) {
  Rng rng(2);
  Tensor left = Tensor::RandNormal(Shape::Matrix(16, 3), rng);
  Tensor right = Tensor::RandNormal(Shape::Matrix(16, 3), rng);
  Tensor y(Shape::Vector(16), 0.0f);  // all negatives
  const float margin = GetParam();
  const float small = losses::ContrastiveLossValue(left, right, y, margin);
  const float large =
      losses::ContrastiveLossValue(left, right, y, margin + 1.0f);
  EXPECT_GE(large, small);
}

INSTANTIATE_TEST_SUITE_P(Margins, ContrastiveMarginTest,
                         ::testing::Values(0.5f, 1.0f, 2.0f, 5.0f, 10.0f));

// ---------------------------------------------------------------- Distillation

TEST(DistillationLossTest, ZeroWhenStudentMatchesTeacher) {
  Rng rng(3);
  Tensor teacher = Tensor::RandNormal(Shape::Matrix(6, 4), rng);
  EXPECT_NEAR(losses::DistillationLossValue(teacher, teacher), 0.0f, 1e-6f);
}

TEST(DistillationLossTest, ValueIsMeanRowSquaredDrift) {
  Tensor teacher(Shape::Matrix(2, 2), {0, 0, 0, 0});
  Tensor student(Shape::Matrix(2, 2), {1, 1, 2, 0});
  // rows: 2 and 4 -> mean 3.
  EXPECT_NEAR(losses::DistillationLossValue(student, teacher), 3.0f, 1e-5f);
}

TEST(DistillationLossTest, GradientPointsTowardTeacher) {
  Tensor teacher(Shape::Matrix(1, 2), {3.0f, -1.0f});
  ag::Variable student =
      ag::Variable::Parameter(Tensor(Shape::Matrix(1, 2), {0.0f, 0.0f}));
  losses::DistillationLoss(student, teacher).Backward();
  EXPECT_LT(student.grad()(0, 0), 0.0f);  // move up toward 3
  EXPECT_GT(student.grad()(0, 1), 0.0f);  // move down toward -1
}

TEST(DistillationLossTest, ShapeMismatchIsFatal) {
  Tensor teacher(Shape::Matrix(2, 3));
  ag::Variable student = ag::Variable::Parameter(Tensor(Shape::Matrix(2, 4)));
  EXPECT_DEATH(losses::DistillationLoss(student, teacher), "mismatch");
}

// ---------------------------------------------------------------- Joint

TEST(JointLossTest, AlphaEndpoints) {
  ag::Variable distill = ag::Variable::Constant(Tensor::Scalar(2.0f));
  ag::Variable contra = ag::Variable::Constant(Tensor::Scalar(10.0f));
  EXPECT_NEAR(losses::JointLoss(distill, contra, 0.0f).value()[0], 10.0f,
              1e-6f);
  EXPECT_NEAR(losses::JointLoss(distill, contra, 1.0f).value()[0], 2.0f,
              1e-6f);
  EXPECT_NEAR(losses::JointLoss(distill, contra, 0.5f).value()[0], 6.0f,
              1e-6f);
}

TEST(JointLossTest, OutOfRangeAlphaIsFatal) {
  ag::Variable a = ag::Variable::Constant(Tensor::Scalar(1.0f));
  EXPECT_DEATH(losses::JointLoss(a, a, 1.5f), "alpha");
}

// ---------------------------------------------------------------- PairSampler

// Builds a labeled set: `per_class` rows per class, feature = label value.
std::pair<Tensor, std::vector<int>> MakeLabeledSet(
    const std::vector<int>& classes, int per_class) {
  const int n = static_cast<int>(classes.size()) * per_class;
  Tensor features(Shape::Matrix(n, 2));
  std::vector<int> labels;
  int row = 0;
  for (int label : classes) {
    for (int i = 0; i < per_class; ++i) {
      features(row, 0) = static_cast<float>(label);
      features(row, 1) = static_cast<float>(label);
      labels.push_back(label);
      ++row;
    }
  }
  return {features, labels};
}

TEST(PairSamplerTest, BalancedRandomLabelsAreConsistent) {
  auto [features, labels] = MakeLabeledSet({0, 1, 2}, 10);
  losses::PairSampler sampler(features, labels,
                              losses::PairStrategy::kBalancedRandom, 7);
  losses::PairBatch batch = sampler.Next(200);
  int positives = 0;
  for (int64_t i = 0; i < 200; ++i) {
    // The feature value encodes the class, so similarity is checkable.
    const bool same = batch.left(i, 0) == batch.right(i, 0);
    EXPECT_EQ(batch.similar[i], same ? 1.0f : 0.0f);
    if (same) ++positives;
  }
  // Balanced to roughly 50/50.
  EXPECT_GT(positives, 60);
  EXPECT_LT(positives, 140);
}

TEST(PairSamplerTest, CrossAndNewNeverPairsOldWithOldPositively) {
  auto [old_features, old_labels] = MakeLabeledSet({0, 1}, 8);
  auto [new_features, new_labels] = MakeLabeledSet({5}, 6);
  losses::PairSampler sampler(old_features, old_labels, new_features,
                              new_labels, losses::PairStrategy::kCrossAndNew,
                              11);
  losses::PairBatch batch = sampler.Next(300);
  for (int64_t i = 0; i < 300; ++i) {
    if (batch.similar[i] == 1.0f) {
      // Positives must be (new, new): feature value 5 on both sides.
      EXPECT_EQ(batch.left(i, 0), 5.0f);
      EXPECT_EQ(batch.right(i, 0), 5.0f);
    } else {
      // Negatives are old x new cross pairs.
      EXPECT_NE(batch.left(i, 0), 5.0f);
      EXPECT_EQ(batch.right(i, 0), 5.0f);
    }
  }
}

TEST(PairSamplerTest, CrossAndNewWithSingleNewSampleIsAllNegative) {
  auto [old_features, old_labels] = MakeLabeledSet({0, 1}, 4);
  auto [new_features, new_labels] = MakeLabeledSet({5}, 1);
  losses::PairSampler sampler(old_features, old_labels, new_features,
                              new_labels, losses::PairStrategy::kCrossAndNew,
                              13);
  losses::PairBatch batch = sampler.Next(50);
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(batch.similar[i], 0.0f);
}

TEST(PairSamplerTest, AllPairsLabelsMatchFeatures) {
  auto [old_features, old_labels] = MakeLabeledSet({0, 1}, 5);
  auto [new_features, new_labels] = MakeLabeledSet({2}, 5);
  losses::PairSampler sampler(old_features, old_labels, new_features,
                              new_labels, losses::PairStrategy::kAllPairs, 17);
  losses::PairBatch batch = sampler.Next(200);
  for (int64_t i = 0; i < 200; ++i) {
    const bool same = batch.left(i, 0) == batch.right(i, 0);
    EXPECT_EQ(batch.similar[i], same ? 1.0f : 0.0f);
  }
}

TEST(PairSamplerTest, CandidatePairCounts) {
  auto [old_features, old_labels] = MakeLabeledSet({0, 1}, 10);   // 20 rows
  auto [new_features, new_labels] = MakeLabeledSet({5}, 6);       // 6 rows
  losses::PairSampler cross(old_features, old_labels, new_features, new_labels,
                            losses::PairStrategy::kCrossAndNew, 1);
  // C(6,2) + 20*6 = 15 + 120.
  EXPECT_EQ(cross.CandidatePairCount(), 135);

  losses::PairSampler all(old_features, old_labels, new_features, new_labels,
                          losses::PairStrategy::kAllPairs, 1);
  // C(26,2) = 325.
  EXPECT_EQ(all.CandidatePairCount(), 325);

  losses::PairSampler balanced(old_features, old_labels,
                               losses::PairStrategy::kBalancedRandom, 1);
  // C(20,2) = 190.
  EXPECT_EQ(balanced.CandidatePairCount(), 190);
}

TEST(PairSamplerTest, PaperPairReductionShrinksCandidateSet) {
  // Sec 5.2: the reduced pair pool is far smaller than all-pairs when the
  // old support set is large.
  auto [old_features, old_labels] = MakeLabeledSet({0, 1, 2, 3}, 200);
  auto [new_features, new_labels] = MakeLabeledSet({4}, 30);
  losses::PairSampler cross(old_features, old_labels, new_features, new_labels,
                            losses::PairStrategy::kCrossAndNew, 1);
  losses::PairSampler all(old_features, old_labels, new_features, new_labels,
                          losses::PairStrategy::kAllPairs, 1);
  EXPECT_LT(cross.CandidatePairCount() * 10, all.CandidatePairCount());
}

TEST(PairSamplerTest, CrossAndNewMarksOldLeftRows) {
  auto [old_features, old_labels] = MakeLabeledSet({0, 1}, 8);
  auto [new_features, new_labels] = MakeLabeledSet({5}, 6);
  losses::PairSampler sampler(old_features, old_labels, new_features,
                              new_labels, losses::PairStrategy::kCrossAndNew,
                              23);
  losses::PairBatch batch = sampler.Next(100);
  ASSERT_EQ(batch.left_is_old.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    // Cross pairs (negatives) are exactly the rows flagged old-left.
    EXPECT_EQ(batch.left_is_old[static_cast<size_t>(i)],
              batch.similar[i] == 0.0f);
  }
}

TEST(PairSamplerTest, OtherStrategiesLeaveFlagsEmpty) {
  auto [features, labels] = MakeLabeledSet({0, 1}, 6);
  losses::PairSampler sampler(features, labels,
                              losses::PairStrategy::kBalancedRandom, 29);
  EXPECT_TRUE(sampler.Next(8).left_is_old.empty());
}

TEST(PairSamplerTest, DeterministicForSeed) {
  auto [features, labels] = MakeLabeledSet({0, 1, 2}, 6);
  losses::PairSampler a(features, labels,
                        losses::PairStrategy::kBalancedRandom, 99);
  losses::PairSampler b(features, labels,
                        losses::PairStrategy::kBalancedRandom, 99);
  losses::PairBatch ba = a.Next(32);
  losses::PairBatch bb = b.Next(32);
  EXPECT_TRUE(AllClose(ba.left, bb.left, 0.0f, 0.0f));
  EXPECT_TRUE(AllClose(ba.right, bb.right, 0.0f, 0.0f));
  EXPECT_TRUE(AllClose(ba.similar, bb.similar, 0.0f, 0.0f));
}

TEST(PairSamplerTest, SingleSetConstructorRejectsCrossStrategy) {
  auto [features, labels] = MakeLabeledSet({0, 1}, 4);
  EXPECT_DEATH(losses::PairSampler(features, labels,
                                   losses::PairStrategy::kCrossAndNew, 1),
               "two-set");
}

}  // namespace
}  // namespace pilote
