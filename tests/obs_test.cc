#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pilote {
namespace obs {
namespace {

// Every test runs against the process-global registry, so each starts from
// zeroed metrics and span aggregates (handles stay valid by contract).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTesting();
    ResetSpansForTesting();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    MetricsRegistry::Global().ResetForTesting();
    ResetSpansForTesting();
  }
};

TEST_F(ObsTest, CounterAddsAndResets) {
  Counter& counter = MetricsRegistry::Global().GetCounter("test/counter");
  counter.Add(3);
  counter.Increment();
  EXPECT_EQ(counter.value(), 4);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST_F(ObsTest, GaugeKeepsLastValue) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test/gauge");
  gauge.Set(1.5);
  gauge.Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
}

TEST_F(ObsTest, RegistryHandlesAreStable) {
  Counter& first = MetricsRegistry::Global().GetCounter("test/stable");
  first.Add(7);
  Counter& second = MetricsRegistry::Global().GetCounter("test/stable");
  EXPECT_EQ(&first, &second);
  MetricsRegistry::Global().ResetForTesting();
  // Reset zeroes in place: the handle must survive and keep recording.
  first.Add(2);
  EXPECT_EQ(second.value(), 2);
}

TEST_F(ObsTest, HistogramTracksCountSumMinMax) {
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test/hist");
  hist.Record(0.001);
  hist.Record(0.004);
  hist.Record(0.016);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 0.021);
  EXPECT_DOUBLE_EQ(snap.min, 0.001);
  EXPECT_DOUBLE_EQ(snap.max, 0.016);
  EXPECT_NEAR(snap.Mean(), 0.007, 1e-12);
}

TEST_F(ObsTest, BucketEdgesAreMonotonic) {
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_LT(Histogram::BucketLowerBound(i - 1),
              Histogram::BucketLowerBound(i));
  }
  // Each value lands in the bucket whose [lower, upper) range contains it.
  for (double v : {1e-6, 3.7e-4, 0.01, 1.0, 123.0}) {
    const int i = Histogram::BucketIndex(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(i));
    EXPECT_LT(v, Histogram::BucketLowerBound(i + 1));
  }
}

TEST_F(ObsTest, PercentilesOrderedAndClampedToObservedRange) {
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test/pct");
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i) * 1e-3);
  HistogramSnapshot snap = hist.Snapshot();
  const double p50 = snap.Percentile(0.50);
  const double p95 = snap.Percentile(0.95);
  const double p99 = snap.Percentile(0.99);
  EXPECT_LE(snap.min, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, snap.max);
  // Uniform 1ms..1000ms: the median must land in the right neighborhood
  // (log-bucket interpolation, so allow one bucket ratio ~19% of slack).
  EXPECT_NEAR(p50, 0.5, 0.12);
  EXPECT_NEAR(p95, 0.95, 0.2);
}

TEST_F(ObsTest, TailPercentileResolvedAtBucketResolution) {
  // 500 fast windows at 1ms and one straggler at 500ms (the straggler is
  // ~0.2% of the population, so the 0.999 rank falls past the fast mass):
  // p999 must land on the straggler within one log-bucket ratio (4
  // buckets/octave, so the relative error of any in-bucket value is
  // bounded by 2^(1/4) ~ 1.19), while p99 stays with the fast mass.
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test/pct");
  for (int i = 0; i < 500; ++i) hist.Record(0.001);
  hist.Record(0.5);
  HistogramSnapshot snap = hist.Snapshot();
  const double p99 = snap.Percentile(0.99);
  const double p999 = snap.Percentile(0.999);
  EXPECT_LT(p99, 0.002);
  EXPECT_GE(p999, 0.5 / std::pow(2.0, 0.25));
  EXPECT_LE(p999, 0.5);
  // p999 is clamped to the observed max, never extrapolated past it.
  EXPECT_LE(p999, snap.max);
}

TEST_F(ObsTest, EmptyHistogramPercentileIsZero) {
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test/empty");
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.0);
}

TEST_F(ObsTest, DeltaIsolatesRecordingsBetweenSnapshots) {
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test/delta");
  hist.Record(1.0);
  hist.Record(2.0);
  HistogramSnapshot before = hist.Snapshot();
  hist.Record(0.25);
  hist.Record(0.5);
  HistogramSnapshot delta = Delta(before, hist.Snapshot());
  EXPECT_EQ(delta.count, 2);
  EXPECT_DOUBLE_EQ(delta.sum, 0.75);
  // Re-derived min/max bound the in-between recordings.
  EXPECT_LE(delta.min, 0.25);
  EXPECT_GE(delta.max, 0.5);
  EXPECT_LE(delta.max, 2.0);
}

TEST_F(ObsTest, ConcurrentRecordingLosesNothing) {
  Counter& counter = MetricsRegistry::Global().GetCounter("test/mt_counter");
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test/mt_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        hist.Record(1e-3 * static_cast<double>(t + 1));
        PILOTE_METRIC_COUNT("test/mt_macro", 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1e-3);
  EXPECT_DOUBLE_EQ(snap.max, 8e-3);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("test/mt_macro").value(),
      kThreads * kPerThread);
}

TEST_F(ObsTest, ConcurrentSpansAggregateAllExecutions) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        PILOTE_TRACE_SPAN("test/mt_span");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const SpanSample& s : SpanProfile()) {
    if (s.name == "test/mt_span") {
      EXPECT_EQ(s.count, kThreads * kPerThread);
      return;
    }
  }
  FAIL() << "span not found in profile";
}

TEST_F(ObsTest, SpansNestAndSelfTimeExcludesChildren) {
  {
    PILOTE_TRACE_SPAN("test/outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      PILOTE_TRACE_SPAN("test/inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  double outer_total = 0.0, outer_self = 0.0, inner_total = 0.0;
  for (const SpanSample& s : SpanProfile()) {
    if (s.name == "test/outer") {
      EXPECT_EQ(s.count, 1);
      outer_total = s.total_seconds;
      outer_self = s.self_seconds;
    } else if (s.name == "test/inner") {
      EXPECT_EQ(s.count, 1);
      inner_total = s.total_seconds;
    }
  }
  EXPECT_GE(inner_total, 0.015);
  EXPECT_GE(outer_total, inner_total);
  // Self time is the outer span minus the nested one.
  EXPECT_NEAR(outer_self, outer_total - inner_total, 1e-9);
  EXPECT_LT(outer_self, outer_total);
}

TEST_F(ObsTest, DisabledRecordingIsANoOp) {
  SetEnabled(false);
  if (Enabled()) GTEST_SKIP() << "PILOTE_METRICS set in environment";
  PILOTE_METRIC_COUNT("test/disabled_counter", 5);
  PILOTE_METRIC_HISTOGRAM("test/disabled_hist", 1.0);
  { PILOTE_TRACE_SPAN("test/disabled_span"); }
  SetEnabled(true);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("test/disabled_counter").value(),
      0);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetHistogram("test/disabled_hist")
                .Snapshot()
                .count,
            0);
  for (const SpanSample& s : SpanProfile()) {
    EXPECT_NE(s.name, "test/disabled_span");
  }
}

TEST_F(ObsTest, ScopedEnableRestoresPreviousState) {
  SetEnabled(false);
  if (Enabled()) GTEST_SKIP() << "PILOTE_METRICS set in environment";
  {
    ScopedEnable enable;
    EXPECT_TRUE(Enabled());
    PILOTE_METRIC_COUNT("test/scoped_counter", 1);
  }
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("test/scoped_counter").value(), 1);
}

TEST_F(ObsTest, JsonAndCsvExportersCarryAllKinds) {
  MetricsRegistry::Global().GetCounter("test/export_counter").Add(42);
  MetricsRegistry::Global().GetGauge("test/export_gauge").Set(3.5);
  MetricsRegistry::Global().GetHistogram("test/export_hist").Record(0.125);
  { PILOTE_TRACE_SPAN("test/export_span"); }

  MetricsSnapshot snapshot = CaptureSnapshot();
  const std::string json = ToJson(snapshot);
  EXPECT_NE(json.find("\"test/export_counter\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test/export_gauge\":3.5"), std::string::npos);
  EXPECT_NE(json.find("\"test/export_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"test/export_span\""), std::string::npos);

  const std::string csv = ToCsv(snapshot);
  EXPECT_EQ(
      csv.rfind("kind,name,labels,count,value,sum,min,max,p50,p95,p99,p999\n",
                0),
      0u);
  EXPECT_NE(csv.find("counter,test/export_counter,,,42"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test/export_hist,,1,"), std::string::npos);
  EXPECT_NE(csv.find("span,test/export_span,,1,"), std::string::npos);

  const std::string report = ToReport(snapshot);
  EXPECT_NE(report.find("test/export_counter"), std::string::npos);
  EXPECT_NE(report.find("== spans (flat profile) =="), std::string::npos);
}

TEST_F(ObsTest, WriteMetricsJsonProducesParseableFile) {
  MetricsRegistry::Global().GetCounter("test/file_counter").Add(1);
  const std::string path = ::testing::TempDir() + "/obs_test_metrics.json";
  ASSERT_TRUE(WriteMetricsJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    body.append(buffer, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("test/file_counter"), std::string::npos);
}

TEST_F(ObsTest, TraceCaptureBuffersChromeEvents) {
  StartTraceCapture();
  ASSERT_TRUE(TraceCaptureActive());
  {
    PILOTE_TRACE_SPAN("test/trace_event");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bool found = false;
  for (const TraceEvent& event : CapturedTraceEvents()) {
    if (std::string(event.name) == "test/trace_event") {
      found = true;
      EXPECT_GE(event.dur_us, 0);
    }
  }
  EXPECT_TRUE(found);

  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    body.append(buffer, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"test/trace_event\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace pilote
