#include <cmath>

#include <gtest/gtest.h>

#include "har/feature_extractor.h"
#include "har/preprocessing.h"
#include "har/sensor_simulator.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace har {
namespace {

TEST(DenoiseTest, ZeroHalfWidthIsIdentity) {
  Tensor recording(Shape::Matrix(10, 3), 2.0f);
  recording(4, 1) = 100.0f;
  Tensor out = DenoiseMovingAverage(recording, 0);
  EXPECT_TRUE(AllClose(out, recording, 0.0f, 0.0f));
}

TEST(DenoiseTest, SmoothsASpike) {
  Tensor recording(Shape::Matrix(9, 1), 0.0f);
  recording(4, 0) = 9.0f;
  Tensor out = DenoiseMovingAverage(recording, 1);
  EXPECT_FLOAT_EQ(out(4, 0), 3.0f);  // (0 + 9 + 0) / 3
  EXPECT_FLOAT_EQ(out(3, 0), 3.0f);
  EXPECT_FLOAT_EQ(out(2, 0), 0.0f);
}

TEST(DenoiseTest, PreservesConstantSignal) {
  Tensor recording(Shape::Matrix(20, 2), 5.0f);
  Tensor out = DenoiseMovingAverage(recording, 3);
  EXPECT_TRUE(AllClose(out, recording));
}

TEST(DenoiseTest, EdgesUseAvailableNeighborhood) {
  Tensor recording(Shape::Matrix(4, 1), {0.0f, 4.0f, 4.0f, 0.0f});
  Tensor out = DenoiseMovingAverage(recording, 1);
  EXPECT_FLOAT_EQ(out(0, 0), 2.0f);  // (0 + 4) / 2
  EXPECT_FLOAT_EQ(out(3, 0), 2.0f);
}

TEST(SegmentTest, DisjointWindowsCoverRecording) {
  Tensor recording(Shape::Matrix(360, kNumChannels));
  for (int64_t t = 0; t < 360; ++t) recording(t, 0) = static_cast<float>(t);
  auto windows = SegmentWindows(recording, kWindowLength, kWindowLength);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 3u);
  EXPECT_FLOAT_EQ((*windows)[1](0, 0), 120.0f);
  EXPECT_FLOAT_EQ((*windows)[2](119, 0), 359.0f);
}

TEST(SegmentTest, OverlappingStride) {
  Tensor recording(Shape::Matrix(240, kNumChannels));
  auto windows = SegmentWindows(recording, kWindowLength, 60);
  ASSERT_TRUE(windows.ok());
  // Starts at 0, 60, 120: 240 - 120 = 120 last valid start.
  EXPECT_EQ(windows->size(), 3u);
}

TEST(SegmentTest, DropsTrailingPartialWindow) {
  Tensor recording(Shape::Matrix(250, kNumChannels));
  auto windows = SegmentWindows(recording, kWindowLength, kWindowLength);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows->size(), 2u);
}

TEST(SegmentTest, TooShortRecordingIsInvalidArgument) {
  Tensor recording(Shape::Matrix(50, kNumChannels));
  auto windows = SegmentWindows(recording, kWindowLength, kWindowLength);
  EXPECT_FALSE(windows.ok());
  EXPECT_EQ(windows.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecordContinuousTest, ProducesRequestedLength) {
  SensorSimulator simulator(1);
  Recording recording = RecordContinuous(simulator, Activity::kWalk, 7);
  EXPECT_EQ(recording.samples.rows(), 7 * kWindowLength);
  EXPECT_EQ(recording.samples.cols(), kNumChannels);
  EXPECT_EQ(recording.activity, Activity::kWalk);
}

TEST(PreprocessTest, EndToEndShapes) {
  SensorSimulator simulator(2);
  Recording recording = RecordContinuous(simulator, Activity::kRun, 5);
  PreprocessOptions options;
  auto features = PreprocessRecording(recording.samples, options);
  ASSERT_TRUE(features.ok()) << features.status();
  EXPECT_EQ(features->rows(), 5);
  EXPECT_EQ(features->cols(), kNumFeatures);
}

TEST(PreprocessTest, DenoisingReducesVarianceFeatures) {
  // Single-episode recording: within one episode the accelerometer is
  // stationary, so smoothing can only remove high-frequency noise.
  // (Across episode boundaries a gravity step would be smeared INTO the
  // neighboring windows and raise their variance — by design.)
  SensorSimulator simulator(3);
  Recording recording = RecordContinuous(simulator, Activity::kStill, 1);
  PreprocessOptions raw_options;
  raw_options.denoise_half_width = 0;
  PreprocessOptions smooth_options;
  smooth_options.denoise_half_width = 3;
  auto raw = PreprocessRecording(recording.samples, raw_options);
  auto smooth = PreprocessRecording(recording.samples, smooth_options);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(smooth.ok());
  // Variance of the accelerometer x channel (feature index 1) must drop.
  double raw_var = 0.0;
  double smooth_var = 0.0;
  for (int64_t i = 0; i < raw->rows(); ++i) {
    raw_var += (*raw)(i, 1);
    smooth_var += (*smooth)(i, 1);
  }
  EXPECT_LT(smooth_var, raw_var);
}

TEST(PreprocessTest, OverlappingWindowsYieldMoreRows) {
  SensorSimulator simulator(4);
  Recording recording = RecordContinuous(simulator, Activity::kDrive, 4);
  PreprocessOptions overlapping;
  overlapping.stride = kWindowLength / 2;
  auto features = PreprocessRecording(recording.samples, overlapping);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->rows(), 7);  // starts at 0,60,...,360
}

}  // namespace
}  // namespace har
}  // namespace pilote
