// Compiled-inference-plan suite: lifetime arena planning on hand-built
// graphs, capture/fusion introspection, bit-identical plan-vs-eager replay
// across batch sizes, the zero-steady-state-allocation pin, and the
// transactional plan rebuild contract under injected faults (chaos label).
#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_tracker.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "core/ncm_classifier.h"
#include "exec/executor.h"
#include "exec/memory_planner.h"
#include "exec/plan_builder.h"
#include "har/har_dataset.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

using core::CloudArtifact;
using core::PiloteConfig;
using exec::ArenaLayout;
using exec::LifetimeInterval;
using exec::PlanArena;
using har::Activity;

// ---------------------------------------------------------- memory planner

TEST(MemoryPlannerTest, SingleIntervalStartsAtZero) {
  ArenaLayout layout = PlanArena({{0, 2, 64}});
  ASSERT_EQ(layout.slices.size(), 1u);
  EXPECT_EQ(layout.slices[0].offset, 0);
  EXPECT_EQ(layout.slices[0].size, 64);
  EXPECT_EQ(layout.total_size, 64);
}

TEST(MemoryPlannerTest, DisjointLifetimesReuseTheSameSlice) {
  // a live on [0,1], b live on [2,3]: b must reuse a's bytes.
  ArenaLayout layout = PlanArena({{0, 1, 32}, {2, 3, 32}});
  EXPECT_EQ(layout.slices[0].offset, layout.slices[1].offset);
  EXPECT_EQ(layout.total_size, 32);
}

TEST(MemoryPlannerTest, OverlappingLifetimesGetDisjointSlices) {
  ArenaLayout layout = PlanArena({{0, 2, 16}, {1, 3, 16}, {2, 4, 16}});
  // Intervals 0 and 1 overlap; 1 and 2 overlap; 0 and 2 only meet at step
  // 2, where 0 is still live (last_use == 2), so all three coexist there?
  // No: interval 0 dies at step 2 and interval 2 is defined at step 2, so
  // they overlap at exactly that step and must stay disjoint too.
  auto disjoint = [&](size_t i, size_t j) {
    const auto& a = layout.slices[i];
    const auto& b = layout.slices[j];
    return a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
  };
  EXPECT_TRUE(disjoint(0, 1));
  EXPECT_TRUE(disjoint(1, 2));
  EXPECT_TRUE(disjoint(0, 2));
  EXPECT_EQ(layout.total_size, 48);
}

TEST(MemoryPlannerTest, ValueDyingBeforeNextDefIsReused) {
  // Chain x0 -> x1 -> x2: each value's last use is the step defining the
  // next, so x2 can reuse x0's slice — peak is two live values, not three.
  ArenaLayout layout = PlanArena({{0, 1, 8}, {1, 2, 8}, {2, 3, 8}});
  EXPECT_EQ(layout.total_size, 16);
  EXPECT_EQ(layout.slices[2].offset, layout.slices[0].offset);
}

TEST(MemoryPlannerTest, AdjacentFreedGapsCoalesce) {
  // Two small neighbors freed at step 2 must merge so the size-64 interval
  // fits in their combined gap instead of growing the arena.
  ArenaLayout layout = PlanArena({{0, 1, 32}, {0, 1, 32}, {2, 3, 64}});
  EXPECT_EQ(layout.total_size, 64);
  EXPECT_EQ(layout.slices[2].offset, 0);
}

TEST(MemoryPlannerTest, FirstFitPrefersLowestOffsetGap) {
  // c frees a low gap, d a high one; e fits both and must take the lower.
  ArenaLayout layout =
      PlanArena({{0, 1, 16}, {0, 3, 16}, {0, 1, 16}, {2, 3, 16}});
  // Interval 3 (def 2) can reuse interval 0's gap (offset 0) or interval
  // 2's gap (offset 32); first-fit takes offset 0.
  EXPECT_EQ(layout.slices[3].offset, 0);
  EXPECT_EQ(layout.total_size, 48);
}

// ---------------------------------------------------------- plan builder

TEST(PlanBuilderTest, FusesElementwiseChainOntoOneStep) {
  exec::PlanBuilder builder;
  Rng rng(7);
  exec::ValueRef x = builder.DeclareInput(4);
  Tensor w = Tensor::RandNormal(Shape::Matrix(3, 4), rng);
  Tensor bias = Tensor::RandNormal(Shape::Vector(3), rng);
  x = builder.Gemm(x, w);
  x = builder.BiasAdd(x, bias);
  x = builder.Relu(x);
  builder.MarkOutput(x);
  auto plan = builder.Finish(/*version=*/1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // GEMM + one fused elementwise step carrying both micro passes, running
  // in place on the GEMM output slice.
  const auto& steps = plan.value()->steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].kind, exec::StepKind::kGemmTransB);
  EXPECT_EQ(steps[1].kind, exec::StepKind::kElementwise);
  EXPECT_EQ(steps[1].in, steps[1].out);
  ASSERT_EQ(steps[1].micro.size(), 2u);
  EXPECT_EQ(steps[1].micro[0].op, exec::MicroOp::kAddRow);
  EXPECT_EQ(steps[1].micro[1].op, exec::MicroOp::kRelu);
  EXPECT_FALSE(plan.value()->DebugString().empty());
}

TEST(PlanBuilderTest, BatchNormLowersToEagerPassSequence) {
  exec::PlanBuilder builder;
  exec::ValueRef x = builder.DeclareInput(2);
  Tensor ones = Tensor::Ones(Shape::Vector(2));
  Tensor zeros = Tensor::Zeros(Shape::Vector(2));
  x = builder.BatchNormInference(x, /*gamma=*/ones, /*beta=*/zeros,
                                 /*mean=*/zeros, /*var=*/ones, 1e-5f);
  builder.MarkOutput(x);
  auto plan = builder.Finish(/*version=*/1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // (x - mean) * inv_std * gamma + beta: four micro passes, same order as
  // the eager AddRow(MulRow(MulRow(SubRow(...)))) composition.
  ASSERT_EQ(plan.value()->steps().size(), 1u);
  const auto& micro = plan.value()->steps()[0].micro;
  ASSERT_EQ(micro.size(), 4u);
  EXPECT_EQ(micro[0].op, exec::MicroOp::kSubRow);
  EXPECT_EQ(micro[1].op, exec::MicroOp::kMulRow);
  EXPECT_EQ(micro[2].op, exec::MicroOp::kMulRow);
  EXPECT_EQ(micro[3].op, exec::MicroOp::kAddRow);
}

TEST(PlanBuilderTest, MarkedOutputIsNeverMutatedInPlace) {
  exec::PlanBuilder builder;
  exec::ValueRef x = builder.DeclareInput(3);
  Tensor bias = Tensor::Ones(Shape::Vector(3));
  x = builder.BiasAdd(x, bias);
  builder.MarkOutput(x);
  exec::ValueRef y = builder.Relu(x);  // must copy, not fuse onto x
  EXPECT_NE(y.id, x.id);
  auto plan = builder.Finish(/*version=*/1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value()->output_value(), x.id);
}

TEST(PlanBuilderTest, FinishWithoutAnyStepsFails) {
  exec::PlanBuilder builder;
  builder.DeclareInput(3);
  auto plan = builder.Finish(/*version=*/0);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanBuilderTest, CosineClassifyTailIsUnimplemented) {
  core::NcmClassifier cosine(core::NcmDistance::kCosine);
  cosine.SetPrototype(0, Tensor(Shape::Vector(2), {1.0f, 0.0f}));
  exec::PlanBuilder builder;
  exec::ValueRef x = builder.DeclareInput(2);
  Tensor bias = Tensor::Ones(Shape::Vector(2));
  x = builder.BiasAdd(x, bias);
  builder.MarkOutput(x);
  Status tail = cosine.CapturePredict(builder, x);
  EXPECT_EQ(tail.code(), StatusCode::kUnimplemented);
}

// ---------------------------------------------------------- executor

TEST(ExecutorTest, ReplaysHandBuiltPlanNumerically) {
  exec::PlanBuilder builder;
  exec::ValueRef x = builder.DeclareInput(2);
  // y = relu((x * W^T) + b) with W = [[1, -1], [2, 0]], b = [0.5, -10].
  Tensor w(Shape::Matrix(2, 2), {1.0f, -1.0f, 2.0f, 0.0f});
  Tensor bias(Shape::Vector(2), {0.5f, -10.0f});
  x = builder.Gemm(x, w);
  x = builder.BiasAdd(x, bias);
  x = builder.Relu(x);
  builder.MarkOutput(x);
  auto plan = builder.Finish(/*version=*/1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  exec::Executor executor(plan.value());
  Tensor in(Shape::Matrix(2, 2), {3.0f, 1.0f, -1.0f, 4.0f});
  Tensor out;
  executor.Run(in, &out);
  ASSERT_EQ(out.rows(), 2);
  ASSERT_EQ(out.cols(), 2);
  EXPECT_FLOAT_EQ(out(0, 0), 2.5f);   // 3 - 1 + 0.5
  EXPECT_FLOAT_EQ(out(0, 1), 0.0f);   // 6 - 10 -> relu
  EXPECT_FLOAT_EQ(out(1, 0), 0.0f);   // -5 + 0.5 -> relu
  EXPECT_FLOAT_EQ(out(1, 1), 0.0f);   // -2 - 10 -> relu
}

TEST(ExecutorTest, ClassifyTailMatchesNcmPredict) {
  core::NcmClassifier ncm;
  ncm.SetPrototype(3, Tensor(Shape::Vector(2), {0.0f, 0.0f}));
  ncm.SetPrototype(8, Tensor(Shape::Vector(2), {10.0f, 10.0f}));

  exec::PlanBuilder builder;
  exec::ValueRef x = builder.DeclareInput(2);
  Tensor bias = Tensor::Zeros(Shape::Vector(2));
  x = builder.BiasAdd(x, bias);  // identity layer to give the plan a step
  builder.MarkOutput(x);
  ASSERT_TRUE(ncm.CapturePredict(builder, x).ok());
  auto plan = builder.Finish(/*version=*/1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan.value()->has_classify_tail());

  Tensor queries(Shape::Matrix(3, 2),
                 {1.0f, 1.0f, 9.0f, 9.0f, 4.0f, 6.0f});
  exec::Executor executor(plan.value());
  std::vector<int> labels;
  executor.RunClassify(queries, &labels);
  EXPECT_EQ(labels, ncm.Predict(queries));
}

// Shared cloud pretrain for the learner-integration cases (same shape as
// the chaos suite fixture).
class CompiledLearnerTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    state_ = new State();
    state_->config = PiloteConfig::Small();
    state_->config.exemplars_per_class = 20;
    har::HarDataGenerator generator(4321);
    data::Dataset d_old = generator.GenerateBalanced(
        60, {Activity::kDrive, Activity::kEscooter, Activity::kStill,
             Activity::kWalk});
    state_->d_new = generator.Generate(Activity::kRun, 30);
    state_->probe = generator.GenerateBalanced(8).features();
    core::CloudPretrainer pretrainer(state_->config);
    Result<core::CloudPretrainResult> pretrain = pretrainer.Run(d_old);
    PILOTE_CHECK(pretrain.ok()) << pretrain.status().ToString();
    state_->artifact = std::move(pretrain).value().artifact;
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  static std::unique_ptr<core::EdgeLearner> MakeLearner() {
    Result<std::unique_ptr<core::EdgeLearner>> made = core::MakeEdgeLearner(
        "pretrained", state_->artifact, state_->config);
    PILOTE_CHECK(made.ok()) << made.status().ToString();
    return std::move(made).value();
  }

  struct State {
    PiloteConfig config;
    CloudArtifact artifact;
    data::Dataset d_new;
    Tensor probe;
  };
  static State* state_;
};

CompiledLearnerTest::State* CompiledLearnerTest::state_ = nullptr;

TEST_F(CompiledLearnerTest, PlanIsLiveAndVersionTagged) {
  auto learner = MakeLearner();
  ASSERT_NE(learner->inference_plan(), nullptr);
  EXPECT_EQ(learner->plan_version(), learner->model_version());
  EXPECT_EQ(learner->inference_plan()->input_cols(),
            state_->config.backbone.input_dim);
  EXPECT_TRUE(learner->inference_plan()->has_classify_tail());
}

TEST_F(CompiledLearnerTest, PlanMatchesEagerBitIdenticalAcrossBatchSizes) {
  auto learner = MakeLearner();
  har::HarDataGenerator generator(99);
  for (int64_t batch : {1, 2, 5, 16}) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    Tensor raw = generator.GenerateBalanced(
        std::max<int64_t>(1, batch / 2 + 1)).features();
    raw = SliceRows(raw, 0, batch);
    ASSERT_EQ(raw.rows(), batch);

    // Labels through the plan vs the eager tape: exact equality.
    EXPECT_EQ(learner->PredictBatch(raw), learner->PredictBatchEager(raw));

    // Embeddings bit for bit: replay the learner's own plan on a private
    // executor and compare against the eager scaler+backbone pass.
    exec::Executor executor(learner->inference_plan());
    Tensor plan_embedding;
    executor.Run(raw, &plan_embedding);
    Tensor eager_embedding = learner->EmbedRaw(raw);
    ASSERT_EQ(plan_embedding.rows(), eager_embedding.rows());
    ASSERT_EQ(plan_embedding.cols(), eager_embedding.cols());
    EXPECT_EQ(std::memcmp(plan_embedding.data(), eager_embedding.data(),
                          static_cast<size_t>(plan_embedding.numel()) *
                              sizeof(float)),
              0)
        << "plan and eager embeddings diverged at batch " << batch;
  }
}

TEST_F(CompiledLearnerTest, SteadyStateReplayIsAllocationFree) {
  auto learner = MakeLearner();
  exec::Executor executor(learner->inference_plan());
  std::vector<int> labels;
  Tensor out;
  // Warm-up: arena growth, label/output buffers, first-use metric
  // registration all land here.
  ASSERT_TRUE(executor.TryRunClassify(state_->probe, &labels));
  ASSERT_TRUE(executor.TryRun(state_->probe, &out));

  alloc::ScopedTracking tracking;
  alloc::AllocationScope scope;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(executor.TryRunClassify(state_->probe, &labels));
    ASSERT_TRUE(executor.TryRun(state_->probe, &out));
  }
  EXPECT_EQ(scope.count(), 0)
      << "steady-state replay touched the allocator " << scope.count()
      << " times (" << scope.bytes() << " bytes)";
}

TEST_F(CompiledLearnerTest, ArenaGrowsOnlyPastTheBatchHighWaterMark) {
  auto learner = MakeLearner();
  exec::Executor executor(learner->inference_plan());
  std::vector<int> labels;
  Tensor big = state_->probe;  // the fixture probe has many rows
  ASSERT_GT(big.rows(), 2);
  ASSERT_TRUE(executor.TryRunClassify(big, &labels));
  const int64_t capacity = executor.arena_capacity();
  EXPECT_EQ(capacity, executor.plan().arena_per_row() * big.rows());

  // Smaller batches replay inside the existing arena.
  Tensor small = SliceRows(big, 0, 2);
  ASSERT_TRUE(executor.TryRunClassify(small, &labels));
  EXPECT_EQ(executor.arena_capacity(), capacity);
  ASSERT_TRUE(executor.TryRunClassify(big, &labels));
  EXPECT_EQ(executor.arena_capacity(), capacity);
}

TEST_F(CompiledLearnerTest, LearnNewClassesRecapturesThePlan) {
  auto learner = MakeLearner();
  const int64_t version_before = learner->plan_version();
  Result<core::TrainReport> learned =
      learner->LearnNewClasses(state_->d_new);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_GT(learner->plan_version(), version_before);
  EXPECT_EQ(learner->plan_version(), learner->model_version());
  // The recaptured tail must carry the new class.
  const std::vector<int>& labels = learner->inference_plan()->labels();
  EXPECT_NE(std::find(labels.begin(), labels.end(),
                      static_cast<int>(Activity::kRun)),
            labels.end());
  EXPECT_EQ(learner->PredictBatch(state_->probe),
            learner->PredictBatchEager(state_->probe));
}

TEST_F(CompiledLearnerTest, FailedLearnRollsThePlanBackWithTheModel) {
  fail::ScopedFailpoints failpoints;
  auto learner = MakeLearner();
  const std::vector<int> before = learner->PredictBatch(state_->probe);

  for (const char* point : {"core/learn/begin", "core/learn/commit"}) {
    SCOPED_TRACE(point);
    ASSERT_TRUE(fail::FailpointRegistry::Global()
                    .Arm(point, fail::FailpointSpec::Once())
                    .ok());
    Result<core::TrainReport> learned =
        learner->LearnNewClasses(state_->d_new);
    ASSERT_FALSE(learned.ok());
    // The rolled-back learner must serve through a live plan again, and
    // that plan must reproduce the pre-fault predictions exactly.
    EXPECT_EQ(learner->plan_version(), learner->model_version());
    ASSERT_NE(learner->inference_plan(), nullptr);
    EXPECT_EQ(learner->PredictBatch(state_->probe), before);
  }
}

TEST_F(CompiledLearnerTest, FailedSupportUpdateKeepsTheLivePlan) {
  fail::ScopedFailpoints failpoints;
  auto learner = MakeLearner();
  const std::vector<int> before = learner->PredictBatch(state_->probe);
  const int64_t version_before = learner->plan_version();

  for (const char* point :
       {"core/support_update/begin", "core/support_update/embed"}) {
    SCOPED_TRACE(point);
    ASSERT_TRUE(fail::FailpointRegistry::Global()
                    .Arm(point, fail::FailpointSpec::Once())
                    .ok());
    Status applied = learner->ApplySupportSetUpdate(learner->support());
    ASSERT_FALSE(applied.ok());
    // A rejected support update never reaches the swap, so the original
    // plan (same version) keeps serving.
    EXPECT_EQ(learner->plan_version(), version_before);
    EXPECT_EQ(learner->PredictBatch(state_->probe), before);
  }

  // With the faults spent the same update commits and recaptures.
  Status applied = learner->ApplySupportSetUpdate(learner->support());
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_GT(learner->plan_version(), version_before);
  EXPECT_EQ(learner->PredictBatch(state_->probe), before);
}

TEST_F(CompiledLearnerTest, DisablingCompiledInferenceFallsBackToEager) {
  auto learner = MakeLearner();
  const std::vector<int> with_plan = learner->PredictBatch(state_->probe);
  learner->SetCompiledInferenceEnabled(false);
  EXPECT_EQ(learner->inference_plan(), nullptr);
  EXPECT_EQ(learner->plan_version(), -1);
  EXPECT_EQ(learner->PredictBatch(state_->probe), with_plan);
  learner->SetCompiledInferenceEnabled(true);
  ASSERT_NE(learner->inference_plan(), nullptr);
  EXPECT_EQ(learner->plan_version(), learner->model_version());
  EXPECT_EQ(learner->PredictBatch(state_->probe), with_plan);
}

}  // namespace
}  // namespace pilote
