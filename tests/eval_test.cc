#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "eval/pca.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace eval {
namespace {

// ---------------------------------------------------------------- Accuracy

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 0, 0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {1}), 0.0);
}

TEST(MetricsTest, PerClassAccuracy) {
  std::vector<int> labels = {0, 0, 1, 1, 1};
  std::vector<int> preds = {0, 1, 1, 1, 0};
  auto per_class = PerClassAccuracy(preds, labels);
  EXPECT_DOUBLE_EQ(per_class[0], 0.5);
  EXPECT_DOUBLE_EQ(per_class[1], 2.0 / 3.0);
}

TEST(MetricsTest, SummarizeMeanStd) {
  MeanStd s = Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
  MeanStd single = Summarize({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
}

// ---------------------------------------------------------------- Confusion

TEST(ConfusionMatrixTest, CountsAndRates) {
  ConfusionMatrix cm({0, 1});
  cm.AddAll({0, 0, 0, 1, 1}, {0, 0, 1, 1, 0});
  EXPECT_EQ(cm.count(0, 0), 2);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(1, 0), 1);
  EXPECT_EQ(cm.count(1, 1), 1);
  EXPECT_NEAR(cm.rate(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.rate(1, 1), 0.5, 1e-12);
  EXPECT_EQ(cm.total(), 5);
  EXPECT_NEAR(cm.OverallAccuracy(), 3.0 / 5.0, 1e-12);
}

TEST(ConfusionMatrixTest, EmptyRowHasZeroRate) {
  ConfusionMatrix cm({0, 1});
  cm.Add(0, 0);
  EXPECT_DOUBLE_EQ(cm.rate(1, 0), 0.0);
}

TEST(ConfusionMatrixTest, UnknownClassIsFatal) {
  ConfusionMatrix cm({0, 1});
  EXPECT_DEATH(cm.Add(0, 5), "unknown class");
}

TEST(ConfusionMatrixTest, ToStringContainsNames) {
  ConfusionMatrix cm({0, 1});
  cm.Add(0, 0);
  cm.Add(1, 1);
  std::string table = cm.ToString({"Walk", "Run"});
  EXPECT_NE(table.find("Walk"), std::string::npos);
  EXPECT_NE(table.find("Run"), std::string::npos);
  EXPECT_NE(table.find("1.000"), std::string::npos);
}

// ---------------------------------------------------------------- Forgetting

TEST(ForgettingTest, DetectsOldClassDegradation) {
  // Labels: two old-class (0) samples, one new-class (1) sample.
  std::vector<int> labels = {0, 0, 1};
  std::vector<int> before = {0, 0, 0};  // old model: old perfect, new wrong
  std::vector<int> after = {0, 1, 1};   // updated: forgot one old sample
  Result<ForgettingReport> report =
      ComputeForgetting(labels, before, after, {0}, {1});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report->old_acc_before, 1.0);
  EXPECT_DOUBLE_EQ(report->old_acc_after, 0.5);
  EXPECT_DOUBLE_EQ(report->new_acc_after, 1.0);
  EXPECT_DOUBLE_EQ(report->forgetting, 0.5);
}

TEST(ForgettingTest, NoForgettingWhenStable) {
  std::vector<int> labels = {0, 1};
  Result<ForgettingReport> report =
      ComputeForgetting(labels, {0, 0}, {0, 1}, {0}, {1});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report->forgetting, 0.0);
  EXPECT_DOUBLE_EQ(report->new_acc_after, 1.0);
}

TEST(ForgettingTest, RejectsDegenerateInputs) {
  // Each of these used to come back as a silent all-zero report.
  const std::vector<int> labels = {0, 1};
  const std::vector<int> preds = {0, 1};
  // Size mismatch.
  EXPECT_FALSE(ComputeForgetting({0}, preds, preds, {0}, {1}).ok());
  // Empty class lists.
  EXPECT_FALSE(ComputeForgetting(labels, preds, preds, {}, {1}).ok());
  EXPECT_FALSE(ComputeForgetting(labels, preds, preds, {0}, {}).ok());
  // Overlapping class lists.
  EXPECT_FALSE(ComputeForgetting(labels, preds, preds, {0, 1}, {1}).ok());
  // No old-class samples present in labels.
  Result<ForgettingReport> no_old =
      ComputeForgetting(labels, preds, preds, {7}, {0, 1});
  ASSERT_FALSE(no_old.ok());
  EXPECT_NE(no_old.status().ToString().find("no old-class samples"),
            std::string::npos);
  // No new-class samples present in labels.
  EXPECT_FALSE(ComputeForgetting(labels, preds, preds, {0, 1}, {7}).ok());
}

TEST(PerClassAccuracyOverTest, ValidatesClassList) {
  const std::vector<int> labels = {0, 0, 1};
  const std::vector<int> preds = {0, 1, 1};
  Result<std::map<int, double>> ok = PerClassAccuracyOver(preds, labels, {0, 1});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_DOUBLE_EQ(ok->at(0), 0.5);
  EXPECT_DOUBLE_EQ(ok->at(1), 1.0);
  // A requested class without samples errors instead of reading 0.0.
  Result<std::map<int, double>> missing =
      PerClassAccuracyOver(preds, labels, {0, 2});
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("has no samples"),
            std::string::npos);
  EXPECT_FALSE(PerClassAccuracyOver(preds, labels, {}).ok());
  EXPECT_FALSE(PerClassAccuracyOver(preds, labels, {0, 0}).ok());
  EXPECT_FALSE(PerClassAccuracyOver({0}, labels, {0}).ok());
  EXPECT_FALSE(PerClassAccuracyOver({}, {}, {0}).ok());
}

// ---------------------------------------------------------------- CL metrics

TEST(TaskAccuracyMatrixTest, SetHasAt) {
  TaskAccuracyMatrix m(3);
  EXPECT_EQ(m.num_tasks(), 3);
  EXPECT_FALSE(m.Has(0, 0));
  m.Set(0, 0, 0.9);
  EXPECT_TRUE(m.Has(0, 0));
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.9);
  m.Set(0, 0, 0.8);  // overwrite keeps the latest
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.8);
}

TEST(TaskAccuracyMatrixDeathTest, UnsetAndOutOfRangeAreFatal) {
  TaskAccuracyMatrix m(2);
  EXPECT_DEATH(m.At(0, 0), "unset matrix entry");
  EXPECT_DEATH(m.Set(2, 0, 0.5), "after_task");
  EXPECT_DEATH(m.Set(0, 0, 1.5), "CHECK");
}

TEST(ClMetricsTest, HandComputedThreeTaskRun) {
  // R = [ [0.9,  - ,  - ],
  //       [0.8, 0.7,  - ],
  //       [0.6, 0.7, 0.9] ]
  TaskAccuracyMatrix m(3);
  m.Set(0, 0, 0.9);
  m.Set(1, 0, 0.8);
  m.Set(1, 1, 0.7);
  m.Set(2, 0, 0.6);
  m.Set(2, 1, 0.7);
  m.Set(2, 2, 0.9);
  Result<ClMetrics> metrics = ComputeClMetrics(m, 0.2);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // Incremental: mean(0.9, (0.8+0.7)/2, (0.6+0.7+0.9)/3).
  EXPECT_NEAR(metrics->average_incremental_accuracy,
              (0.9 + 0.75 + 2.2 / 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(metrics->final_average_accuracy, 2.2 / 3.0, 1e-12);
  // Forgetting: task0 best 0.9 -> 0.6 (0.3); task1 best 0.7 -> 0.7 (0.0).
  EXPECT_NEAR(metrics->forgetting, 0.15, 1e-12);
  // BWT: (0.6-0.9 + 0.7-0.7) / 2 = -0.15.
  EXPECT_NEAR(metrics->backward_transfer, -0.15, 1e-12);
  // Upper diagonal absent -> no forward transfer.
  EXPECT_FALSE(metrics->has_forward_transfer);

  // With the upper diagonal recorded the FWT appears.
  m.Set(0, 1, 0.3);
  m.Set(1, 2, 0.4);
  Result<ClMetrics> with_fwt = ComputeClMetrics(m, 0.2);
  ASSERT_TRUE(with_fwt.ok());
  EXPECT_TRUE(with_fwt->has_forward_transfer);
  EXPECT_NEAR(with_fwt->forward_transfer, ((0.3 - 0.2) + (0.4 - 0.2)) / 2.0,
              1e-12);
}

TEST(ClMetricsTest, SingleTaskHasNoForgetting) {
  TaskAccuracyMatrix m(1);
  m.Set(0, 0, 0.85);
  Result<ClMetrics> metrics = ComputeClMetrics(m, 0.5);
  ASSERT_TRUE(metrics.ok());
  EXPECT_DOUBLE_EQ(metrics->average_incremental_accuracy, 0.85);
  EXPECT_DOUBLE_EQ(metrics->final_average_accuracy, 0.85);
  EXPECT_DOUBLE_EQ(metrics->forgetting, 0.0);
  EXPECT_DOUBLE_EQ(metrics->backward_transfer, 0.0);
  EXPECT_FALSE(metrics->has_forward_transfer);
}

TEST(ClMetricsTest, MissingLowerTriangleEntryIsAnError) {
  TaskAccuracyMatrix m(2);
  m.Set(0, 0, 0.9);
  m.Set(1, 1, 0.8);  // R(1, 0) missing
  Result<ClMetrics> metrics = ComputeClMetrics(m, 0.0);
  ASSERT_FALSE(metrics.ok());
  EXPECT_NE(metrics.status().ToString().find("R(1, 0)"), std::string::npos);
}

// ---------------------------------------------------------------- PCA

TEST(PcaTest, RecoversDominantDirection) {
  // Data varies along (1, 1)/sqrt(2) with tiny orthogonal noise.
  Rng rng(1);
  Tensor data(Shape::Matrix(200, 2));
  for (int64_t i = 0; i < 200; ++i) {
    const float t = static_cast<float>(rng.Gaussian(0.0, 3.0));
    const float noise = static_cast<float>(rng.Gaussian(0.0, 0.05));
    data(i, 0) = t + noise;
    data(i, 1) = t - noise;
  }
  Pca pca(data, 1);
  const Tensor& comp = pca.components();
  const float ratio = std::fabs(comp(0, 0) / comp(0, 1));
  EXPECT_NEAR(ratio, 1.0f, 0.05f);
  EXPECT_GT(pca.explained_variance_ratio()[0], 0.99);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(2);
  Tensor data = Tensor::RandNormal(Shape::Matrix(100, 6), rng);
  Pca pca(data, 3);
  const Tensor& c = pca.components();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (int64_t d = 0; d < 6; ++d) dot += c(i, d) * c(j, d);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 0.05) << i << "," << j;
    }
  }
}

TEST(PcaTest, TransformShape) {
  Rng rng(3);
  Tensor data = Tensor::RandNormal(Shape::Matrix(50, 8), rng);
  Pca pca(data, 2);
  Tensor projected = pca.Transform(data);
  EXPECT_EQ(projected.rows(), 50);
  EXPECT_EQ(projected.cols(), 2);
}

TEST(PcaTest, ProjectionPreservesTotalVarianceBound) {
  Rng rng(4);
  Tensor data = Tensor::RandNormal(Shape::Matrix(80, 5), rng);
  Pca pca(data, 5);
  double total_ratio = 0.0;
  for (double r : pca.explained_variance_ratio()) total_ratio += r;
  EXPECT_LE(total_ratio, 1.05);
  EXPECT_GT(total_ratio, 0.9);
}

// ---------------------------------------------------------------- Separation

TEST(ClusterSeparationTest, TightClustersScoreHigher) {
  Rng rng(5);
  auto make = [&](float spread) {
    Tensor embeddings(Shape::Matrix(40, 2));
    std::vector<int> labels;
    for (int64_t i = 0; i < 40; ++i) {
      const int label = i < 20 ? 0 : 1;
      embeddings(i, 0) = static_cast<float>(label * 10 + rng.Gaussian(0, spread));
      embeddings(i, 1) = static_cast<float>(rng.Gaussian(0, spread));
      labels.push_back(label);
    }
    return ComputeClusterSeparation(embeddings, labels);
  };
  ClusterSeparation tight = make(0.2f);
  ClusterSeparation loose = make(3.0f);
  EXPECT_GT(tight.fisher_ratio, loose.fisher_ratio);
  EXPECT_GT(tight.min_centroid_distance, 0.0);
}

TEST(ClusterSeparationTest, SingleClassHasNoBetweenScatter) {
  Rng rng(6);
  Tensor embeddings = Tensor::RandNormal(Shape::Matrix(10, 3), rng);
  std::vector<int> labels(10, 0);
  ClusterSeparation sep = ComputeClusterSeparation(embeddings, labels);
  EXPECT_DOUBLE_EQ(sep.between_class_scatter, 0.0);
  EXPECT_GT(sep.within_class_scatter, 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace pilote
