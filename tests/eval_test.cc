#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "eval/pca.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace eval {
namespace {

// ---------------------------------------------------------------- Accuracy

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 0, 0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {1}), 0.0);
}

TEST(MetricsTest, PerClassAccuracy) {
  std::vector<int> labels = {0, 0, 1, 1, 1};
  std::vector<int> preds = {0, 1, 1, 1, 0};
  auto per_class = PerClassAccuracy(preds, labels);
  EXPECT_DOUBLE_EQ(per_class[0], 0.5);
  EXPECT_DOUBLE_EQ(per_class[1], 2.0 / 3.0);
}

TEST(MetricsTest, SummarizeMeanStd) {
  MeanStd s = Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
  MeanStd single = Summarize({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
}

// ---------------------------------------------------------------- Confusion

TEST(ConfusionMatrixTest, CountsAndRates) {
  ConfusionMatrix cm({0, 1});
  cm.AddAll({0, 0, 0, 1, 1}, {0, 0, 1, 1, 0});
  EXPECT_EQ(cm.count(0, 0), 2);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(1, 0), 1);
  EXPECT_EQ(cm.count(1, 1), 1);
  EXPECT_NEAR(cm.rate(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.rate(1, 1), 0.5, 1e-12);
  EXPECT_EQ(cm.total(), 5);
  EXPECT_NEAR(cm.OverallAccuracy(), 3.0 / 5.0, 1e-12);
}

TEST(ConfusionMatrixTest, EmptyRowHasZeroRate) {
  ConfusionMatrix cm({0, 1});
  cm.Add(0, 0);
  EXPECT_DOUBLE_EQ(cm.rate(1, 0), 0.0);
}

TEST(ConfusionMatrixTest, UnknownClassIsFatal) {
  ConfusionMatrix cm({0, 1});
  EXPECT_DEATH(cm.Add(0, 5), "unknown class");
}

TEST(ConfusionMatrixTest, ToStringContainsNames) {
  ConfusionMatrix cm({0, 1});
  cm.Add(0, 0);
  cm.Add(1, 1);
  std::string table = cm.ToString({"Walk", "Run"});
  EXPECT_NE(table.find("Walk"), std::string::npos);
  EXPECT_NE(table.find("Run"), std::string::npos);
  EXPECT_NE(table.find("1.000"), std::string::npos);
}

// ---------------------------------------------------------------- Forgetting

TEST(ForgettingTest, DetectsOldClassDegradation) {
  // Labels: two old-class (0) samples, one new-class (1) sample.
  std::vector<int> labels = {0, 0, 1};
  std::vector<int> before = {0, 0, 0};  // old model: old perfect, new wrong
  std::vector<int> after = {0, 1, 1};   // updated: forgot one old sample
  ForgettingReport report =
      ComputeForgetting(labels, before, after, {0}, {1});
  EXPECT_DOUBLE_EQ(report.old_acc_before, 1.0);
  EXPECT_DOUBLE_EQ(report.old_acc_after, 0.5);
  EXPECT_DOUBLE_EQ(report.new_acc_after, 1.0);
  EXPECT_DOUBLE_EQ(report.forgetting, 0.5);
}

TEST(ForgettingTest, NoForgettingWhenStable) {
  std::vector<int> labels = {0, 1};
  ForgettingReport report =
      ComputeForgetting(labels, {0, 0}, {0, 1}, {0}, {1});
  EXPECT_DOUBLE_EQ(report.forgetting, 0.0);
  EXPECT_DOUBLE_EQ(report.new_acc_after, 1.0);
}

// ---------------------------------------------------------------- PCA

TEST(PcaTest, RecoversDominantDirection) {
  // Data varies along (1, 1)/sqrt(2) with tiny orthogonal noise.
  Rng rng(1);
  Tensor data(Shape::Matrix(200, 2));
  for (int64_t i = 0; i < 200; ++i) {
    const float t = static_cast<float>(rng.Gaussian(0.0, 3.0));
    const float noise = static_cast<float>(rng.Gaussian(0.0, 0.05));
    data(i, 0) = t + noise;
    data(i, 1) = t - noise;
  }
  Pca pca(data, 1);
  const Tensor& comp = pca.components();
  const float ratio = std::fabs(comp(0, 0) / comp(0, 1));
  EXPECT_NEAR(ratio, 1.0f, 0.05f);
  EXPECT_GT(pca.explained_variance_ratio()[0], 0.99);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(2);
  Tensor data = Tensor::RandNormal(Shape::Matrix(100, 6), rng);
  Pca pca(data, 3);
  const Tensor& c = pca.components();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (int64_t d = 0; d < 6; ++d) dot += c(i, d) * c(j, d);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 0.05) << i << "," << j;
    }
  }
}

TEST(PcaTest, TransformShape) {
  Rng rng(3);
  Tensor data = Tensor::RandNormal(Shape::Matrix(50, 8), rng);
  Pca pca(data, 2);
  Tensor projected = pca.Transform(data);
  EXPECT_EQ(projected.rows(), 50);
  EXPECT_EQ(projected.cols(), 2);
}

TEST(PcaTest, ProjectionPreservesTotalVarianceBound) {
  Rng rng(4);
  Tensor data = Tensor::RandNormal(Shape::Matrix(80, 5), rng);
  Pca pca(data, 5);
  double total_ratio = 0.0;
  for (double r : pca.explained_variance_ratio()) total_ratio += r;
  EXPECT_LE(total_ratio, 1.05);
  EXPECT_GT(total_ratio, 0.9);
}

// ---------------------------------------------------------------- Separation

TEST(ClusterSeparationTest, TightClustersScoreHigher) {
  Rng rng(5);
  auto make = [&](float spread) {
    Tensor embeddings(Shape::Matrix(40, 2));
    std::vector<int> labels;
    for (int64_t i = 0; i < 40; ++i) {
      const int label = i < 20 ? 0 : 1;
      embeddings(i, 0) = static_cast<float>(label * 10 + rng.Gaussian(0, spread));
      embeddings(i, 1) = static_cast<float>(rng.Gaussian(0, spread));
      labels.push_back(label);
    }
    return ComputeClusterSeparation(embeddings, labels);
  };
  ClusterSeparation tight = make(0.2f);
  ClusterSeparation loose = make(3.0f);
  EXPECT_GT(tight.fisher_ratio, loose.fisher_ratio);
  EXPECT_GT(tight.min_centroid_distance, 0.0);
}

TEST(ClusterSeparationTest, SingleClassHasNoBetweenScatter) {
  Rng rng(6);
  Tensor embeddings = Tensor::RandNormal(Shape::Matrix(10, 3), rng);
  std::vector<int> labels(10, 0);
  ClusterSeparation sep = ComputeClusterSeparation(embeddings, labels);
  EXPECT_DOUBLE_EQ(sep.between_class_scatter, 0.0);
  EXPECT_GT(sep.within_class_scatter, 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace pilote
