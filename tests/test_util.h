#ifndef PILOTE_TESTS_TEST_UTIL_H_
#define PILOTE_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace pilote {
namespace testing {

// Gaussian-blob dataset: `per_class` rows per class, class c centered at
// (c * separation) on every coordinate, isotropic unit-ish noise. Cheap,
// separable, and label-checkable — the workhorse for trainer/core tests.
inline data::Dataset MakeBlobs(const std::vector<int>& classes, int per_class,
                               int64_t dim, float separation, Rng& rng,
                               float noise = 1.0f) {
  const int64_t n = static_cast<int64_t>(classes.size()) * per_class;
  Tensor features(Shape::Matrix(n, dim));
  std::vector<int> labels;
  labels.reserve(static_cast<size_t>(n));
  int64_t row = 0;
  for (int label : classes) {
    for (int i = 0; i < per_class; ++i) {
      for (int64_t d = 0; d < dim; ++d) {
        features(row, d) = static_cast<float>(
            label * separation + rng.Gaussian(0.0, noise));
      }
      labels.push_back(label);
      ++row;
    }
  }
  return data::Dataset(std::move(features), std::move(labels));
}

}  // namespace testing
}  // namespace pilote

#endif  // PILOTE_TESTS_TEST_UTIL_H_
