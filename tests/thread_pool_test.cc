#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace pilote {
namespace {

// Stress coverage for the pool's dispatch and shutdown paths. These tests
// are the TSan preset's main workload for common/thread_pool: run them in a
// -DPILOTE_SANITIZE=thread build to race-check the queue, the completion
// latch, and destruction.

TEST(ThreadPoolStressTest, ConcurrentParallelForFromManyClients) {
  ThreadPool pool(4);
  constexpr int kClients = 4;
  constexpr int kItersPerClient = 25;
  constexpr int64_t kCount = 64;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&pool, &total] {
      for (int it = 0; it < kItersPerClient; ++it) {
        pool.ParallelFor(kCount, [&total](int64_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(total.load(), kClients * kItersPerClient * kCount);
}

TEST(ThreadPoolStressTest, ConcurrentRangeDispatchCoversEverything) {
  ThreadPool pool(3);
  constexpr int kClients = 3;
  std::atomic<int64_t> covered{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&pool, &covered] {
      for (int it = 0; it < 20; ++it) {
        pool.ParallelForRanges(257, [&covered](int64_t begin, int64_t end) {
          covered.fetch_add(end - begin, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(covered.load(), kClients * 20 * 257);
}

TEST(ThreadPoolStressTest, RapidConstructRunDestroyCycles) {
  // Exercises worker startup and the shutdown handshake back to back; under
  // TSan this is the main producer of construction/destruction races.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int> hits{0};
    pool.ParallelFor(17, [&](int64_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 17);
  }
}

TEST(ThreadPoolStressTest, DestroyWithoutSubmittingWork) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(2);
    EXPECT_EQ(pool.num_threads(), 2);
  }
}

TEST(ThreadPoolStressTest, ShutdownRacesWithFinalCompletion) {
  // The destructor runs immediately after ParallelFor returns, while worker
  // threads may still be between the completion notification and the next
  // queue wait.
  for (int round = 0; round < 30; ++round) {
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(4, [&](int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 6);
  }
}

TEST(ThreadPoolTest, GlobalPoolIsStable) {
  ThreadPool* first = &ThreadPool::Global();
  ThreadPool* second = &ThreadPool::Global();
  EXPECT_EQ(first, second);
  EXPECT_GE(first->num_threads(), 1);
}

TEST(ThreadPoolTest, OversubscribedCountStillCoversAllIndices) {
  // More chunks requested than workers: the queue must drain fully even
  // when every worker has a backlog.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace pilote
