// Exporter-format tests for obs/export.cc: JSON/CSV/Prometheus round
// trips of labeled and unlabeled series, empty-registry output, histogram
// delta edge cases at the export boundary, and the unification of
// failpoint stats into the same snapshot/artifacts as the metrics.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "obs/export.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pilote {
namespace obs {
namespace {

class ObsExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTesting();
    FamilyRegistry::Global().ResetForTesting();
    ResetSpansForTesting();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    MetricsRegistry::Global().ResetForTesting();
    FamilyRegistry::Global().ResetForTesting();
    ResetSpansForTesting();
  }
};

// Must run before any test registers a series: ResetForTesting zeroes
// metrics in place but registrations are permanent by design (handles are
// cached in function-local statics), so a truly empty registry only exists
// at the start of the process.
TEST_F(ObsExportTest, EmptyRegistryProducesWellFormedOutput) {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  FamilyRegistry::Global().AppendTo(&snapshot);
  const std::string json = ToJson(snapshot);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{}"), std::string::npos);

  const std::string csv = ToCsv(snapshot);
  EXPECT_EQ(
      csv, "kind,name,labels,count,value,sum,min,max,p50,p95,p99,p999\n");

  // Prometheus: no series, no TYPE headers.
  EXPECT_EQ(ToPrometheus(snapshot), "");
}

TEST_F(ObsExportTest, LabeledSeriesRoundTripThroughJsonAndCsv) {
  CounterFamily degraded = FamilyRegistry::Global().GetCounterFamily(
      "test/degraded_total", "reason", {"deadline", "backpressure"});
  degraded.At(0).Add(3);
  degraded.At(1).Add(5);
  HistogramFamily stage = FamilyRegistry::Global().GetHistogramFamily(
      "test/stage_ms", "stage", {"predict"});
  stage.At(0).Record(2.0);

  MetricsSnapshot snapshot = CaptureSnapshot();
  const std::string json = ToJson(snapshot);
  EXPECT_NE(json.find("\"test/degraded_total{reason=\\\"deadline\\\"}\":3"),
            std::string::npos);
  EXPECT_NE(
      json.find("\"test/degraded_total{reason=\\\"backpressure\\\"}\":5"),
      std::string::npos);
  EXPECT_NE(json.find("\"test/stage_ms{stage=\\\"predict\\\"}\""),
            std::string::npos);

  // CSV: labels land in their own column, quote-stripped so the row stays
  // a plain 12-field record.
  const std::string csv = ToCsv(snapshot);
  EXPECT_NE(csv.find("counter,test/degraded_total,reason=deadline,,3"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,test/stage_ms,stage=predict,1,"),
            std::string::npos);
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 11);
}

TEST_F(ObsExportTest, HistogramDeltaEdgeCasesAtExportBoundary) {
  Histogram& hist = MetricsRegistry::Global().GetHistogram("test/delta_ms");
  hist.Record(1.0);
  const HistogramSnapshot before = hist.Snapshot();

  // No recordings in between: the delta is empty and exports as a
  // zero-count histogram with p999 present (0, not NaN/garbage).
  HistogramSnapshot empty_delta = Delta(before, hist.Snapshot());
  EXPECT_EQ(empty_delta.count, 0);
  MetricsSnapshot snapshot;
  snapshot.histograms.push_back(
      MakeHistogramSample("test/delta_ms", "", empty_delta));
  std::string json = ToJson(snapshot);
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":0"), std::string::npos);

  // Recordings in between: the delta carries only those, and the sample
  // quantiles stay within the delta's observed range.
  hist.Record(8.0);
  hist.Record(8.0);
  HistogramSnapshot delta = Delta(before, hist.Snapshot());
  EXPECT_EQ(delta.count, 2);
  HistogramSample sample = MakeHistogramSample("test/delta_ms", "", delta);
  EXPECT_GE(sample.p50, delta.min);
  EXPECT_LE(sample.p999, delta.max);
  EXPECT_GE(sample.p999, sample.p99);
}

TEST_F(ObsExportTest, PrometheusExpositionFollowsConventions) {
  MetricsRegistry::Global().GetCounter("test/events").Add(7);
  MetricsRegistry::Global().GetCounter("test/stalls_total").Add(2);
  MetricsRegistry::Global().GetGauge("test/depth").Set(4.0);
  CounterFamily family = FamilyRegistry::Global().GetCounterFamily(
      "test/degraded_total", "reason", {"fault"});
  family.At(0).Increment();
  HistogramFamily stage = FamilyRegistry::Global().GetHistogramFamily(
      "test/stage_ms", "stage", {"predict"});
  stage.At(0).Record(1.5);

  const std::string prom = ToPrometheus(CaptureSnapshot());
  // Counters gain _total exactly once; '/' maps to '_'.
  EXPECT_NE(prom.find("# TYPE pilote_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("pilote_test_events_total 7"), std::string::npos);
  EXPECT_NE(prom.find("pilote_test_stalls_total 2"), std::string::npos);
  EXPECT_EQ(prom.find("stalls_total_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pilote_test_depth gauge"), std::string::npos);
  // Labeled counter keeps its labels.
  EXPECT_NE(
      prom.find("pilote_test_degraded_total{reason=\"fault\"} 1"),
      std::string::npos);
  // Histograms export as summaries; the quantile label composes with the
  // family label, and the tail quantile is present.
  EXPECT_NE(prom.find("# TYPE pilote_test_stage_ms summary"),
            std::string::npos);
  EXPECT_NE(prom.find(
                "pilote_test_stage_ms{stage=\"predict\",quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("pilote_test_stage_ms_count{stage=\"predict\"} 1"),
            std::string::npos);
}

TEST_F(ObsExportTest, FailpointStatsUnifiedIntoSnapshotAndArtifacts) {
  fail::ScopedFailpoints scope;
  ASSERT_TRUE(fail::FailpointRegistry::Global()
                  .Arm("test/export_fp", fail::FailpointSpec::Always())
                  .ok());

  MetricsSnapshot snapshot = CaptureSnapshot();
  bool found = false;
  for (const FailpointSample& f : snapshot.failpoints) {
    if (f.name == "test/export_fp") {
      found = true;
      EXPECT_TRUE(f.armed);
    }
  }
  ASSERT_TRUE(found) << "failpoint stats not captured into the snapshot";

  // One chaos artifact: the same JSON/exposition that carries the metrics
  // carries the failpoint counters.
  const std::string json = ToJson(snapshot);
  EXPECT_NE(json.find("\"failpoints\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test/export_fp\":{\"armed\":true"),
            std::string::npos);
  const std::string prom = ToPrometheus(snapshot);
  EXPECT_NE(prom.find("pilote_failpoint_armed{name=\"test/export_fp\"} 1"),
            std::string::npos);
  EXPECT_NE(
      prom.find("pilote_failpoint_fires_total{name=\"test/export_fp\"} 0"),
      std::string::npos);
  EXPECT_NE(prom.find("# TYPE pilote_failpoint_hits_total counter"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace pilote
