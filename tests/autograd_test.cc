#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

namespace ag = autograd;

// Central-difference gradient check: `build` maps the current values of
// `leaves` to a scalar Variable. Verifies every analytic gradient entry.
void CheckGradients(std::vector<ag::Variable>& leaves,
                    const std::function<ag::Variable()>& build,
                    float epsilon = 1e-3f, float tolerance = 2e-2f) {
  ag::Variable loss = build();
  ASSERT_EQ(loss.value().numel(), 1);
  for (auto& leaf : leaves) leaf.ZeroGrad();
  loss.Backward();

  for (auto& leaf : leaves) {
    ASSERT_TRUE(leaf.requires_grad());
    const Tensor analytic = leaf.grad();
    ASSERT_EQ(analytic.numel(), leaf.value().numel());
    Tensor& value = leaf.mutable_value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float original = value[i];
      value[i] = original + epsilon;
      const float plus = build().value()[0];
      value[i] = original - epsilon;
      const float minus = build().value()[0];
      value[i] = original;
      const float numeric = (plus - minus) / (2.0f * epsilon);
      EXPECT_NEAR(analytic[i], numeric,
                  tolerance * std::max(1.0f, std::fabs(numeric)))
          << "entry " << i;
    }
  }
}

TEST(VariableTest, LeafProperties) {
  ag::Variable v = ag::Variable::Parameter(Tensor::Scalar(3.0f));
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.value()[0], 3.0f);
  EXPECT_EQ(v.grad().numel(), 0);  // untouched before backward

  ag::Variable c = ag::Variable::Constant(Tensor::Scalar(1.0f));
  EXPECT_FALSE(c.requires_grad());
}

TEST(VariableTest, CopiesAliasTheSameNode) {
  ag::Variable v = ag::Variable::Parameter(Tensor::Scalar(1.0f));
  ag::Variable alias = v;
  alias.mutable_value()[0] = 9.0f;
  EXPECT_EQ(v.value()[0], 9.0f);
}

TEST(VariableTest, BackwardOnNonScalarIsFatal) {
  ag::Variable v = ag::Variable::Parameter(Tensor(Shape::Vector(3), 1.0f));
  EXPECT_DEATH(v.Backward(), "scalar");
}

TEST(VariableTest, BackwardThroughSharedNodeAccumulates) {
  // loss = sum(x + x) -> dloss/dx = 2.
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(3), 1.0f));
  ag::Variable loss = ag::Sum(ag::Add(x, x));
  loss.Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor(Shape::Vector(3), 2.0f)));
}

TEST(VariableTest, GradAccumulatesAcrossBackwardCalls) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(2), 1.0f));
  ag::Sum(x).Backward();
  ag::Sum(x).Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor(Shape::Vector(2), 2.0f)));
  x.ZeroGrad();
  EXPECT_EQ(x.grad().numel(), 0);
}

TEST(VariableTest, ConstantsReceiveNoGradient) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(2), 1.0f));
  ag::Variable c = ag::Variable::Constant(Tensor(Shape::Vector(2), 5.0f));
  ag::Sum(ag::Mul(x, c)).Backward();
  EXPECT_EQ(c.grad().numel(), 0);
  EXPECT_TRUE(AllClose(x.grad(), Tensor(Shape::Vector(2), 5.0f)));
}

// ---- Gradient checks per op ----

TEST(GradCheckTest, AddSubMul) {
  Rng rng(1);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(3, 4), rng)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(3, 4), rng))};
  CheckGradients(leaves, [&] {
    return ag::Sum(ag::Mul(ag::Add(leaves[0], leaves[1]),
                           ag::Sub(leaves[0], leaves[1])));
  });
}

TEST(GradCheckTest, ScalarOpsAndSquare) {
  Rng rng(2);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Vector(6), rng))};
  CheckGradients(leaves, [&] {
    return ag::Mean(ag::Square(ag::AddScalar(ag::MulScalar(leaves[0], 3.0f),
                                             -1.0f)));
  });
}

TEST(GradCheckTest, ReluAwayFromKink) {
  Rng rng(3);
  // Keep values away from 0 so finite differences are valid.
  Tensor t = Tensor::RandNormal(Shape::Vector(8), rng);
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (std::fabs(t[i]) < 0.2f) t[i] = 0.5f;
  }
  std::vector<ag::Variable> leaves = {ag::Variable::Parameter(t)};
  CheckGradients(leaves, [&] { return ag::Sum(ag::Relu(leaves[0])); });
}

TEST(GradCheckTest, SqrtAwayFromZero) {
  Rng rng(31);
  std::vector<ag::Variable> leaves = {ag::Variable::Parameter(
      Tensor::RandUniform(Shape::Vector(6), rng, 0.5f, 4.0f))};
  CheckGradients(leaves, [&] { return ag::Sum(ag::Sqrt(leaves[0])); });
}

TEST(SqrtOpTest, EpsilonKeepsGradientFiniteAtZero) {
  ag::Variable x = ag::Variable::Parameter(Tensor(Shape::Vector(1), 0.0f));
  ag::Sum(ag::Sqrt(x, 1e-12f)).Backward();
  EXPECT_TRUE(std::isfinite(x.grad()[0]));
  EXPECT_GT(x.grad()[0], 0.0f);
}

TEST(GradCheckTest, MatMulBothSides) {
  Rng rng(4);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(3, 5), rng)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(5, 2), rng))};
  CheckGradients(leaves, [&] {
    return ag::Sum(ag::Square(ag::MatMul(leaves[0], leaves[1])));
  });
}

TEST(GradCheckTest, LinearTransform) {
  Rng rng(5);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(4, 6), rng)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(3, 6), rng))};
  CheckGradients(leaves, [&] {
    return ag::Sum(ag::Square(ag::LinearTransform(leaves[0], leaves[1])));
  });
}

TEST(GradCheckTest, AddRowVector) {
  Rng rng(6);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(4, 3), rng)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Vector(3), rng))};
  CheckGradients(leaves, [&] {
    return ag::Sum(ag::Square(ag::AddRowVector(leaves[0], leaves[1])));
  });
}

TEST(GradCheckTest, MulRowVector) {
  Rng rng(7);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(4, 3), rng)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Vector(3), rng))};
  CheckGradients(leaves, [&] {
    return ag::Sum(ag::Square(ag::MulRowVector(leaves[0], leaves[1])));
  });
}

TEST(GradCheckTest, RowSumAndMean) {
  Rng rng(8);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(5, 4), rng))};
  CheckGradients(leaves, [&] {
    return ag::Mean(ag::Square(ag::RowSum(leaves[0])));
  });
}

TEST(GradCheckTest, ConcatAndSliceRows) {
  Rng rng(9);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(3, 4), rng)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(2, 4), rng))};
  CheckGradients(leaves, [&] {
    ag::Variable combined = ag::ConcatRows({leaves[0], leaves[1]});
    ag::Variable top = ag::SliceRows(combined, 0, 2);
    ag::Variable bottom = ag::SliceRows(combined, 2, 5);
    return ag::Add(ag::Sum(ag::Square(top)), ag::Sum(ag::Square(bottom)));
  });
}

TEST(GradCheckTest, BatchNormTraining) {
  Rng rng(10);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(8, 3), rng)),
      ag::Variable::Parameter(Tensor::RandUniform(Shape::Vector(3), rng, 0.5f,
                                                  1.5f)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Vector(3), rng))};
  CheckGradients(
      leaves,
      [&] {
        auto out =
            ag::BatchNormTraining(leaves[0], leaves[1], leaves[2], 1e-5f);
        return ag::Sum(ag::Square(out.y));
      },
      /*epsilon=*/1e-2f, /*tolerance=*/5e-2f);
}

TEST(GradCheckTest, BatchNormInference) {
  Rng rng(11);
  Tensor mean = Tensor::RandNormal(Shape::Vector(3), rng);
  Tensor var = Tensor::RandUniform(Shape::Vector(3), rng, 0.5f, 2.0f);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(4, 3), rng)),
      ag::Variable::Parameter(Tensor::RandUniform(Shape::Vector(3), rng, 0.5f,
                                                  1.5f)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Vector(3), rng))};
  CheckGradients(leaves, [&] {
    return ag::Sum(ag::Square(ag::BatchNormInference(
        leaves[0], leaves[1], leaves[2], mean, var, 1e-5f)));
  });
}

TEST(BatchNormOpTest, TrainingOutputIsNormalized) {
  Rng rng(12);
  ag::Variable x = ag::Variable::Constant(
      Tensor::RandNormal(Shape::Matrix(64, 4), rng, 5.0f, 3.0f));
  ag::Variable gamma = ag::Variable::Constant(Tensor::Ones(Shape::Vector(4)));
  ag::Variable beta = ag::Variable::Constant(Tensor::Zeros(Shape::Vector(4)));
  auto out = ag::BatchNormTraining(x, gamma, beta, 1e-5f);
  Tensor mean = ColumnMean(out.y.value());
  Tensor var = ColumnVariance(out.y.value(), mean);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(mean[c], 0.0f, 1e-4f);
    EXPECT_NEAR(var[c], 1.0f, 1e-2f);
  }
  // Batch statistics reported for the running-average update.
  EXPECT_TRUE(AllClose(out.batch_mean, ColumnMean(x.value()), 1e-4f));
}

TEST(GradCheckTest, DeepCompositionChain) {
  // A miniature MLP assembled from raw ops: checks interactions between
  // ops rather than ops in isolation.
  Rng rng(13);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Matrix(4, 5), rng)),
      ag::Variable::Parameter(
          Tensor::RandNormal(Shape::Matrix(3, 5), rng, 0.0f, 0.5f)),
      ag::Variable::Parameter(Tensor::RandNormal(Shape::Vector(3), rng)),
      ag::Variable::Parameter(
          Tensor::RandNormal(Shape::Matrix(2, 3), rng, 0.0f, 0.5f))};
  CheckGradients(
      leaves,
      [&] {
        ag::Variable h = ag::Relu(ag::AddRowVector(
            ag::LinearTransform(leaves[0], leaves[1]), leaves[2]));
        ag::Variable out = ag::LinearTransform(h, leaves[3]);
        return ag::Mean(ag::Square(out));
      },
      /*epsilon=*/1e-2f, /*tolerance=*/5e-2f);
}

}  // namespace
}  // namespace pilote
