// Tests of the deployment-facing pieces: full-artifact persistence
// (SaveArtifact/LoadArtifact) and the streaming classifier.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/artifact_io.h"
#include "core/cloud.h"
#include "core/edge_learner.h"
#include "core/streaming_classifier.h"
#include "har/har_dataset.h"
#include "har/preprocessing.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace core {
namespace {

using har::Activity;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class DeploymentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State;
    state_->config = PiloteConfig::Small();
    state_->config.exemplars_per_class = 30;
    state_->config.pretrain.max_epochs = 8;
    state_->config.pretrain.batches_per_epoch = 48;

    har::HarDataGenerator generator(555);
    state_->d_old = generator.GenerateBalanced(
        100, {Activity::kDrive, Activity::kEscooter, Activity::kStill,
              Activity::kWalk});
    state_->test = generator.GenerateBalanced(
        30, {Activity::kDrive, Activity::kEscooter, Activity::kStill,
             Activity::kWalk});
    CloudPretrainer pretrainer(state_->config);
    Result<CloudPretrainResult> result = pretrainer.Run(state_->d_old);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    state_->artifact = std::move(result.value().artifact);
  }
  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    PiloteConfig config;
    data::Dataset d_old;
    data::Dataset test;
    CloudArtifact artifact;
  };
  static State* state_;
};

DeploymentTest::State* DeploymentTest::state_ = nullptr;

// ------------------------------------------------------------- Artifact IO

TEST_F(DeploymentTest, ArtifactRoundTripPreservesBehaviour) {
  const std::string path = TempPath("pilote_artifact_test.bin");
  ASSERT_TRUE(SaveArtifact(path, state_->artifact).ok());
  Result<CloudArtifact> loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->old_classes, state_->artifact.old_classes);
  EXPECT_EQ(loaded->backbone_config.hidden_dims,
            state_->artifact.backbone_config.hidden_dims);
  EXPECT_EQ(loaded->support.TotalExemplars(),
            state_->artifact.support.TotalExemplars());

  // A learner built from the loaded artifact predicts identically.
  PretrainedLearner original(state_->artifact, state_->config);
  PretrainedLearner restored(*loaded, state_->config);
  EXPECT_EQ(original.Predict(state_->test.features()),
            restored.Predict(state_->test.features()));
  std::remove(path.c_str());
}

TEST_F(DeploymentTest, ArtifactLoadRejectsGarbage) {
  const std::string path = TempPath("pilote_artifact_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "definitely not an artifact";
  }
  Result<CloudArtifact> loaded = LoadArtifact(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST_F(DeploymentTest, ArtifactLoadRejectsTruncation) {
  const std::string path = TempPath("pilote_artifact_trunc.bin");
  ASSERT_TRUE(SaveArtifact(path, state_->artifact).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) * 2 / 3);
  Result<CloudArtifact> loaded = LoadArtifact(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST_F(DeploymentTest, LegacyV1ArtifactStillLoadsAndPredictsIdentically) {
  // Devices in the field hold pre-CRC v1 artifacts; the versioned header
  // keeps them loadable after the v2 migration.
  const std::string path = TempPath("pilote_artifact_v1.bin");
  ASSERT_TRUE(SaveArtifactV1ForTesting(path, state_->artifact).ok());
  Result<CloudArtifact> loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->old_classes, state_->artifact.old_classes);
  EXPECT_EQ(loaded->model_payload, state_->artifact.model_payload);
  PretrainedLearner original(state_->artifact, state_->config);
  PretrainedLearner restored(*loaded, state_->config);
  EXPECT_EQ(original.Predict(state_->test.features()),
            restored.Predict(state_->test.features()));
  std::remove(path.c_str());
}

TEST_F(DeploymentTest, MissingArtifactFileIsIoError) {
  Result<CloudArtifact> loaded = LoadArtifact("/no/such/artifact.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------------------- Streaming

TEST_F(DeploymentTest, StreamingClassifierEmitsOnePredictionPerWindow) {
  PretrainedLearner learner(state_->artifact, state_->config);
  StreamingClassifier::Options options;
  StreamingClassifier classifier(&learner, options);

  EXPECT_FALSE(classifier.CurrentActivity().ok());

  har::SensorSimulator sensors(77);
  har::Recording recording =
      har::RecordContinuous(sensors, Activity::kStill, 3);
  std::vector<int> predictions = classifier.PushBlock(recording.samples);
  EXPECT_EQ(predictions.size(), 3u);
  EXPECT_EQ(classifier.windows_classified(), 3);
  ASSERT_TRUE(classifier.CurrentActivity().ok());
}

TEST_F(DeploymentTest, StreamingClassifierRecognizesActivities) {
  PretrainedLearner learner(state_->artifact, state_->config);
  StreamingClassifier::Options options;
  options.vote_window = 3;
  StreamingClassifier classifier(&learner, options);

  har::SensorSimulator sensors(78);
  har::Recording recording =
      har::RecordContinuous(sensors, Activity::kDrive, 6);
  std::vector<int> predictions = classifier.PushBlock(recording.samples);
  int correct = 0;
  for (int label : predictions) {
    if (label == har::ActivityLabel(Activity::kDrive)) ++correct;
  }
  EXPECT_GE(correct, 4) << "streamed Drive windows misclassified";
}

TEST_F(DeploymentTest, MajorityVoteSuppressesIsolatedFlips) {
  // Feed windows one sample at a time; the per-window history may contain
  // isolated flips, but the smoothed stream must flip strictly less often.
  PretrainedLearner learner(state_->artifact, state_->config);
  StreamingClassifier::Options smoothed_options;
  smoothed_options.vote_window = 5;
  StreamingClassifier classifier(&learner, smoothed_options);

  har::SensorSimulator sensors(79);
  har::Recording walk = har::RecordContinuous(sensors, Activity::kWalk, 8);
  std::vector<int> smoothed = classifier.PushBlock(walk.samples);
  const std::vector<int>& raw = classifier.window_history();
  ASSERT_EQ(raw.size(), smoothed.size());

  auto transitions = [](const std::vector<int>& seq) {
    int count = 0;
    for (size_t i = 1; i < seq.size(); ++i) {
      if (seq[i] != seq[i - 1]) ++count;
    }
    return count;
  };
  EXPECT_LE(transitions(smoothed), transitions(raw));
}

TEST_F(DeploymentTest, PushSampleValidatesShape) {
  PretrainedLearner learner(state_->artifact, state_->config);
  StreamingClassifier classifier(&learner, {});
  EXPECT_DEATH(classifier.PushSample(Tensor(Shape::Vector(5))),
               "CHECK failed");
}

TEST_F(DeploymentTest, VoteWindowOneIsRawStream) {
  PretrainedLearner learner(state_->artifact, state_->config);
  StreamingClassifier::Options options;
  options.vote_window = 1;
  StreamingClassifier classifier(&learner, options);
  har::SensorSimulator sensors(80);
  har::Recording recording =
      har::RecordContinuous(sensors, Activity::kEscooter, 4);
  std::vector<int> predictions = classifier.PushBlock(recording.samples);
  EXPECT_EQ(predictions, classifier.window_history());
}

}  // namespace
}  // namespace core
}  // namespace pilote
