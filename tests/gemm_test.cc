#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace pilote {
namespace {

// Naive triple-loop reference used to validate the optimized kernels.
Tensor ReferenceMatMul(const Tensor& a, const Tensor& b) {
  Tensor c(Shape::Matrix(a.rows(), b.cols()));
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < a.cols(); ++p) acc += a(i, p) * b(p, j);
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(GemmTest, SmallKnownProduct) {
  Tensor a(Shape::Matrix(2, 3), {1, 2, 3, 4, 5, 6});
  Tensor b(Shape::Matrix(3, 2), {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor(Shape::Matrix(2, 2), {58, 64, 139, 154})));
}

TEST(GemmTest, IdentityIsNeutral) {
  Rng rng(1);
  Tensor a = Tensor::RandNormal(Shape::Matrix(6, 6), rng);
  Tensor eye(Shape::Matrix(6, 6));
  for (int64_t i = 0; i < 6; ++i) eye(i, i) = 1.0f;
  EXPECT_TRUE(AllClose(MatMul(a, eye), a));
  EXPECT_TRUE(AllClose(MatMul(eye, a), a));
}

TEST(GemmTest, TransBMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::RandNormal(Shape::Matrix(5, 8), rng);
  Tensor b = Tensor::RandNormal(Shape::Matrix(7, 8), rng);
  EXPECT_TRUE(AllClose(MatMulTransB(a, b), MatMul(a, Transpose(b)), 1e-4f));
}

TEST(GemmTest, TransAMatchesExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::RandNormal(Shape::Matrix(8, 5), rng);
  Tensor b = Tensor::RandNormal(Shape::Matrix(8, 7), rng);
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), MatMul(Transpose(a), b), 1e-4f));
}

TEST(GemmTest, MismatchedInnerDimIsFatal) {
  Tensor a(Shape::Matrix(2, 3));
  Tensor b(Shape::Matrix(4, 2));
  EXPECT_DEATH(MatMul(a, b), "MatMul");
}

TEST(GemmTest, TransposeInvolution) {
  Rng rng(4);
  Tensor a = Tensor::RandNormal(Shape::Matrix(3, 9), rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a, 0.0f, 0.0f));
}

// Parameterized sweep over shapes, including sizes large enough to cross
// the kernel's parallel-dispatch threshold and degenerate 1-row/1-col
// cases.
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  Tensor a = Tensor::RandNormal(Shape::Matrix(m, k), rng);
  Tensor b = Tensor::RandNormal(Shape::Matrix(k, n), rng);
  EXPECT_TRUE(AllClose(MatMul(a, b), ReferenceMatMul(a, b), 1e-3f, 1e-3f))
      << "m=" << m << " k=" << k << " n=" << n;
}

TEST_P(GemmShapeTest, TransBMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 7 + k * 13 + n * 17));
  Tensor a = Tensor::RandNormal(Shape::Matrix(m, k), rng);
  Tensor bt = Tensor::RandNormal(Shape::Matrix(n, k), rng);
  EXPECT_TRUE(AllClose(MatMulTransB(a, bt),
                       ReferenceMatMul(a, Transpose(bt)), 1e-3f, 1e-3f));
}

TEST_P(GemmShapeTest, TransAMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 19 + k * 23 + n * 29));
  Tensor at = Tensor::RandNormal(Shape::Matrix(k, m), rng);
  Tensor b = Tensor::RandNormal(Shape::Matrix(k, n), rng);
  EXPECT_TRUE(AllClose(MatMulTransA(at, b),
                       ReferenceMatMul(Transpose(at), b), 1e-3f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 8, 5),
                      std::make_tuple(7, 1, 3), std::make_tuple(4, 6, 1),
                      std::make_tuple(16, 16, 16), std::make_tuple(33, 17, 29),
                      std::make_tuple(64, 128, 32),
                      std::make_tuple(128, 80, 128)));

}  // namespace
}  // namespace pilote
